"""Command-line interface: regenerate paper exhibits from a shell.

Installed as ``python -m repro`` (see :mod:`repro.__main__`).  Four
subcommands cover the common flows:

* ``summary``   -- headline reliability numbers at the paper's config.
* ``exhibits``  -- regenerate the analytic tables/figures (optionally a
  subset by substring match on the title).
* ``campaign``  -- run a Monte-Carlo fault-injection campaign on a
  functional engine and compare with the analytical model.
* ``raresim``   -- conditional (rare-event) campaign for Y/Z FIT
  estimates.
* ``scenario``  -- mixed transient/burst/stuck-at campaign over any
  protection scheme (SuDoku-X/Y/Z and the five baselines); the spec
  comes from a JSON file or inline burst/stuck flags
  (docs/faultmodels.md).
* ``chaos``     -- sweep metadata-fault rates against the engines and
  report the SDC/DUE breakdown per SuDoku level.
* ``perf``      -- run the Fig. 8/9 ideal-vs-SuDoku comparison on chosen
  workloads.
* ``lint``      -- domain static analysis (RPR rules).
* ``bench``     -- run the benchmark suite, record perf trajectories,
  and gate against the committed baseline (docs/benchmarking.md).

``campaign``, ``perf``, and ``exhibits`` accept the shared telemetry
flags (see :mod:`repro.obs` and ``docs/telemetry.md``):

* ``--metrics-out FILE``  -- Prometheus text-format metrics dump;
* ``--trace-out FILE``    -- completed spans as JSON lines;
* ``--manifest-out FILE`` -- run manifest (config, seed, git SHA,
  durations);
* ``--progress``          -- rate/ETA heartbeat lines on stderr.

``campaign`` and ``raresim`` additionally accept the resilience flags
(see :mod:`repro.resilience` and ``docs/resilience.md``):

* ``--checkpoint FILE`` / ``--checkpoint-every N`` -- periodic atomic
  snapshots of campaign state;
* ``--resume FILE``       -- continue a killed campaign bit-identically;
* ``--deadline SECONDS``  -- wall-clock budget; expiry ends the campaign
  cleanly with partial results;
* ``--result-out FILE``   -- final aggregates as JSON (atomic write).

``campaign``, ``raresim``, ``scenario``, and ``chaos`` accept
``--shards N`` to split the campaign across N worker processes (see
:mod:`repro.parallel` and ``docs/parallelism.md``); ``--shards 1`` (the
default) is bit-identical to the serial path, and checkpoints compose
per shard.  ``campaign``, ``raresim``, and ``chaos`` also accept
``--scenario FILE`` to overlay a mixed fault scenario
(``docs/faultmodels.md``).  The same four commands accept
``--backend {reference,numpy}`` to pick the bit-plane kernel backend
(``docs/kernels.md``); outcomes are bit-identical either way.
"""

from __future__ import annotations

import argparse
import contextlib
import os
import sys
import time
from typing import Dict, List, Optional

_NULL_CONTEXT = contextlib.nullcontext()


def _telemetry_parent() -> argparse.ArgumentParser:
    """Shared telemetry flags for the long-running subcommands."""
    parent = argparse.ArgumentParser(add_help=False)
    group = parent.add_argument_group("telemetry")
    group.add_argument(
        "--metrics-out", default="", metavar="FILE",
        help="write metrics in Prometheus text format to FILE",
    )
    group.add_argument(
        "--trace-out", default="", metavar="FILE",
        help="write completed spans as JSON lines to FILE",
    )
    group.add_argument(
        "--manifest-out", default="", metavar="FILE",
        help="write a run manifest (config, seed, git SHA, durations) to FILE",
    )
    group.add_argument(
        "--progress", action="store_true",
        help="emit rate/ETA heartbeat lines on stderr",
    )
    return parent


def _positive_float(text: str) -> float:
    """Argparse type: a strictly positive float (``--deadline``)."""
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"{text!r} is not a number")
    if not value > 0.0:
        raise argparse.ArgumentTypeError(f"must be positive, got {text!r}")
    return value


def _rate(text: str) -> float:
    """Argparse type: a probability in [0, 1] (chaos rates)."""
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"{text!r} is not a number")
    if not 0.0 <= value <= 1.0:
        raise argparse.ArgumentTypeError(f"must be in [0, 1], got {text!r}")
    return value


def _positive_int(text: str) -> int:
    """Argparse type: a strictly positive integer (``--shards``)."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"{text!r} is not an integer")
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {text!r}")
    return value


def _parallel_parent() -> argparse.ArgumentParser:
    """Shared ``--shards`` flag for the campaign-style subcommands."""
    parent = argparse.ArgumentParser(add_help=False)
    group = parent.add_argument_group("parallelism")
    group.add_argument(
        "--shards", type=_positive_int, default=1, metavar="N",
        help="split the campaign across N worker processes with "
             "deterministically spawned RNG streams (1: serial, "
             "bit-identical to the pre-sharding behaviour)",
    )
    return parent


def _resilience_parent() -> argparse.ArgumentParser:
    """Shared checkpoint/resume/deadline flags for campaign commands."""
    parent = argparse.ArgumentParser(add_help=False)
    group = parent.add_argument_group("resilience")
    group.add_argument(
        "--checkpoint", default="", metavar="FILE",
        help="write campaign checkpoints (atomically) to FILE",
    )
    group.add_argument(
        "--checkpoint-every", type=int, default=0, metavar="N",
        help="flush a checkpoint every N completed intervals/trials "
             "(0: only on interrupt, deadline, or completion)",
    )
    group.add_argument(
        "--resume", default="", metavar="FILE",
        help="resume from a checkpoint written by a previous run",
    )
    group.add_argument(
        "--deadline", type=_positive_float, default=None, metavar="SECONDS",
        help="wall-clock budget; on expiry the campaign ends cleanly "
             "with partial results",
    )
    group.add_argument(
        "--result-out", default="", metavar="FILE",
        help="write the final campaign aggregates as JSON to FILE",
    )
    return parent


def _scrub_mode_parent() -> argparse.ArgumentParser:
    """Shared ``--sparse``/``--dense`` scrub-mode flags.

    The two modes produce bit-identical outcome counters (see
    docs/performance.md); ``--dense`` exists as a trust-nothing audit
    mode that decodes every frame instead of only the fault-indexed
    dirty ones.
    """
    parent = argparse.ArgumentParser(add_help=False)
    group = parent.add_argument_group("scrub mode")
    mode = group.add_mutually_exclusive_group()
    mode.add_argument(
        "--sparse", action="store_const", const="sparse", dest="scrub_mode",
        help="fault-indexed sparse scrub: decode only dirty frames and "
             "bulk-account the rest as clean (default; bit-identical "
             "counters to --dense)",
    )
    mode.add_argument(
        "--dense", action="store_const", const="dense", dest="scrub_mode",
        help="decode every frame each pass (trust-nothing audit mode)",
    )
    parent.set_defaults(scrub_mode="sparse")
    return parent


def _backend_parent() -> argparse.ArgumentParser:
    """Shared ``--backend`` kernel-backend flag.

    Both backends produce bit-identical outcome counters (see
    docs/kernels.md); ``numpy`` vectorizes the bit-plane hot loops,
    ``reference`` keeps the original pure-Python paths.
    """
    from repro.kernels import BACKEND_NAMES

    parent = argparse.ArgumentParser(add_help=False)
    group = parent.add_argument_group("kernel backend")
    group.add_argument(
        "--backend", choices=list(BACKEND_NAMES), default="reference",
        help="bit-plane kernel backend for the hot loops (bit-identical "
             "outcomes; 'numpy' is the vectorized fast path)",
    )
    return parent


def _burst_pmf(text: str) -> List:
    """Argparse type: ``LEN:PROB[,LEN:PROB...]`` burst-length PMF.

    A bare ``LEN`` (no colon) gets weight 1; weights are normalized by
    the spec, so ``2,3,4`` means uniform over {2, 3, 4}.
    """
    entries = []
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        if ":" in part:
            raw_length, raw_weight = part.split(":", 1)
        else:
            raw_length, raw_weight = part, "1"
        try:
            length = int(raw_length)
            weight = float(raw_weight)
        except ValueError:
            raise argparse.ArgumentTypeError(
                f"{part!r} is not LEN or LEN:PROB"
            )
        if length < 1 or weight < 0:
            raise argparse.ArgumentTypeError(
                f"{part!r}: length must be >= 1 and weight >= 0"
            )
        entries.append((length, weight))
    if not entries:
        raise argparse.ArgumentTypeError(f"{text!r} has no PMF entries")
    return entries


def _scenario_parent() -> argparse.ArgumentParser:
    """Shared ``--scenario FILE`` flag for the campaign-style commands."""
    parent = argparse.ArgumentParser(add_help=False)
    group = parent.add_argument_group("fault scenario")
    group.add_argument(
        "--scenario", default="", metavar="FILE",
        help="JSON FaultScenario spec (docs/faultmodels.md); overlays "
             "burst and stuck-at fault sources on the campaign",
    )
    return parent


def _chaos_parent() -> argparse.ArgumentParser:
    """Metadata chaos-injection flags (see docs/resilience.md)."""
    parent = argparse.ArgumentParser(add_help=False)
    group = parent.add_argument_group("chaos")
    group.add_argument(
        "--plt-flip-rate", type=_rate, default=0.0, metavar="P",
        help="per-group, per-interval probability of a PLT parity bit flip",
    )
    group.add_argument(
        "--map-swap-rate", type=_rate, default=0.0, metavar="P",
        help="per-group, per-interval probability of a group-mapping swap",
    )
    group.add_argument(
        "--visit-drop-rate", type=_rate, default=0.0, metavar="P",
        help="per-visit probability a scheduled scrub visit is dropped",
    )
    group.add_argument(
        "--visit-duplicate-rate", type=_rate, default=0.0, metavar="P",
        help="per-visit probability a scrub visit is performed twice",
    )
    group.add_argument(
        "--chaos-seed", type=int, default=0,
        help="seed for the (separate) chaos RNG stream",
    )
    return parent


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SuDoku (DSN 2019) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    telemetry = _telemetry_parent()
    resilience = _resilience_parent()
    chaos_flags = _chaos_parent()
    parallel = _parallel_parent()
    scrub_mode = _scrub_mode_parent()
    scenario_file = _scenario_parent()
    backend = _backend_parent()

    sub.add_parser("summary", help="headline reliability numbers")

    exhibits = sub.add_parser(
        "exhibits", help="regenerate paper exhibits", parents=[telemetry]
    )
    exhibits.add_argument(
        "--only", default="", help="substring filter on exhibit titles"
    )

    campaign = sub.add_parser(
        "campaign", help="Monte-Carlo fault injection",
        parents=[
            telemetry, resilience, chaos_flags, parallel, scrub_mode,
            scenario_file, backend,
        ],
    )
    campaign.add_argument("--level", choices=["X", "Y", "Z"], default="Z")
    campaign.add_argument("--ber", type=float, default=8e-4)
    campaign.add_argument("--intervals", type=int, default=100)
    campaign.add_argument("--group-size", type=int, default=32)
    campaign.add_argument("--seed", type=int, default=0)

    raresim = sub.add_parser(
        "raresim", help="conditional rare-event FIT estimate",
        parents=[
            telemetry, resilience, parallel, scrub_mode, scenario_file,
            backend,
        ],
    )
    raresim.add_argument("--level", choices=["Y", "Z"], default="Z")
    raresim.add_argument("--ber", type=float, default=1e-4)
    raresim.add_argument("--trials", type=int, default=2000)
    raresim.add_argument("--group-size", type=int, default=64)
    raresim.add_argument("--num-groups", type=int, default=2048)
    raresim.add_argument("--seed", type=int, default=0)

    chaos = sub.add_parser(
        "chaos",
        help="sweep metadata-fault rates; report SDC/DUE per SuDoku level",
        parents=[telemetry, parallel, scrub_mode, scenario_file, backend],
    )
    chaos.add_argument(
        "--levels", nargs="+", choices=["X", "Y", "Z"], default=["X", "Y", "Z"]
    )
    chaos.add_argument(
        "--plt-flip-rates", nargs="+", type=_rate,
        default=[0.0, 1e-3, 1e-2], metavar="P",
        help="PLT bit-flip rates to sweep",
    )
    chaos.add_argument(
        "--map-swap-rate", type=_rate, default=0.0, metavar="P",
        help="group-mapping swap rate applied at every sweep point",
    )
    chaos.add_argument("--ber", type=float, default=8e-4)
    chaos.add_argument("--intervals", type=int, default=50)
    chaos.add_argument("--group-size", type=int, default=16)
    chaos.add_argument("--seed", type=int, default=0)
    chaos.add_argument("--chaos-seed", type=int, default=0)
    chaos.add_argument(
        "--result-out", default="", metavar="FILE",
        help="write the sweep table as JSON to FILE",
    )

    from repro.reliability.scenario import SCHEMES

    scenario = sub.add_parser(
        "scenario",
        help="mixed transient/burst/stuck-at campaign over any scheme",
        parents=[
            telemetry, resilience, chaos_flags, parallel, scrub_mode, backend,
        ],
    )
    scenario.add_argument(
        "--scheme", choices=list(SCHEMES), default="Z",
        help="protection scheme: SuDoku level or baseline",
    )
    scenario.add_argument(
        "--scenario", default="", metavar="FILE",
        help="JSON FaultScenario spec; when given, the inline "
             "--ber/--burst-*/--stuck-ppm flags are ignored",
    )
    scenario.add_argument("--intervals", type=int, default=100)
    scenario.add_argument("--group-size", type=int, default=8)
    scenario.add_argument("--seed", type=int, default=0)
    scenario.add_argument(
        "--ber", type=_rate, default=1e-3,
        help="transient per-bit flip probability per interval",
    )
    scenario.add_argument(
        "--burst-rate", type=_rate, default=0.0, metavar="P",
        help="per-line, per-interval probability of a burst event",
    )
    scenario.add_argument(
        "--burst-lengths", type=_burst_pmf, default=[(3, 1.0)],
        metavar="LEN:PROB[,...]",
        help="burst-length PMF, e.g. '2:0.5,3:0.3,4:0.2' (bare lengths "
             "are uniform: '2,3,4')",
    )
    scenario.add_argument(
        "--burst-span", type=_positive_int, default=None, metavar="BITS",
        help="bit window bursts may start in (default: the physical row)",
    )
    scenario.add_argument(
        "--burst-alignment", type=_positive_int, default=1, metavar="BITS",
        help="burst start positions snap to multiples of this",
    )
    scenario.add_argument(
        "--burst-multiplicity", type=_positive_int, default=1, metavar="N",
        help="adjacent physical rows struck per burst event",
    )
    scenario.add_argument(
        "--interleave", type=_positive_int, default=1, metavar="DEG",
        help="bit-interleave degree: logical lines per physical row "
             "(1 = no interleaving)",
    )
    scenario.add_argument(
        "--stuck-ppm", type=float, default=0.0, metavar="PPM",
        help="stuck-at permanent-fault density in parts per million bits",
    )

    perf = sub.add_parser(
        "perf", help="Fig. 8/9 performance comparison", parents=[telemetry]
    )
    perf.add_argument("--workloads", nargs="+", default=["mcf", "gcc", "MIX1"])
    perf.add_argument("--accesses", type=int, default=8000)
    perf.add_argument("--seed", type=int, default=1)

    report = sub.add_parser("report", help="write a Markdown exhibit snapshot")
    report.add_argument("--output", default="REPORT.md")
    report.add_argument(
        "--with-performance", action="store_true",
        help="also run the Fig. 8/9 simulations (minutes)",
    )

    distance = sub.add_parser(
        "distance", help="verify the CRC-31 detection distance at line length"
    )
    distance.add_argument("--samples", type=int, default=20_000)

    from repro.lint.cli import configure_lint_parser

    lint = sub.add_parser(
        "lint",
        help="run the repro domain linter (RPR rules; see "
             "docs/static-analysis.md)",
    )
    configure_lint_parser(lint)

    from repro.bench.cli import configure_bench_parser

    bench = sub.add_parser(
        "bench",
        help="run benchmarks, record perf trajectories, gate against the "
             "baseline (see docs/benchmarking.md)",
    )
    configure_bench_parser(bench)

    from repro.serve.cli import configure_serve_parser

    serve = sub.add_parser(
        "serve",
        help="run the campaign service: JSON specs over HTTP, SSE "
             "progress, content-addressed result dedup (see "
             "docs/serving.md)",
    )
    configure_serve_parser(serve)

    design = sub.add_parser(
        "design", help="find the cheapest configuration meeting a FIT target"
    )
    design.add_argument("--delta", type=float, default=35.0)
    design.add_argument("--target-fit", type=float, default=1.0)

    return parser


def _telemetry_requested(args: argparse.Namespace) -> bool:
    return bool(
        getattr(args, "metrics_out", "")
        or getattr(args, "trace_out", "")
        or getattr(args, "manifest_out", "")
        or getattr(args, "progress", False)
    )


def _check_out_paths(args: argparse.Namespace) -> None:
    """Fail fast on unwritable export paths.

    Campaigns can run for minutes; discovering at export time that
    ``--metrics-out`` points into a missing directory would discard the
    whole run.
    """
    for attr in ("metrics_out", "trace_out", "manifest_out",
                 "result_out", "checkpoint"):
        path = getattr(args, attr, "")
        if not path:
            continue
        parent = os.path.dirname(path) or "."
        if not os.path.isdir(parent):
            flag = "--" + attr.replace("_", "-")
            raise SystemExit(
                f"repro: error: {flag} {path!r}: "
                f"directory {parent!r} does not exist"
            )


def _build_telemetry(args: argparse.Namespace):
    """(telemetry, progress factory) for a subcommand's flags."""
    from repro.obs import NULL_PROGRESS, ProgressReporter, Telemetry

    _check_out_paths(args)
    telemetry = Telemetry.create() if _telemetry_requested(args) else None

    def make_progress(total: Optional[int], label: str):
        if not getattr(args, "progress", False):
            return NULL_PROGRESS
        return ProgressReporter(total=total, label=label)

    return telemetry, make_progress


def _export_telemetry(
    args: argparse.Namespace,
    telemetry,
    command: str,
    config: Dict[str, object],
    seed: Optional[int],
    durations_s: Dict[str, float],
) -> None:
    """Write the metrics / trace / manifest files a subcommand asked for."""
    if telemetry is None:
        return
    from repro.obs import (
        build_manifest,
        write_manifest,
        write_metrics_json_lines,
        write_metrics_text,
        write_spans_json_lines,
    )

    if args.metrics_out:
        if args.metrics_out.endswith(".jsonl"):
            write_metrics_json_lines(telemetry.metrics, args.metrics_out)
        else:
            write_metrics_text(telemetry.metrics, args.metrics_out)
        print(f"wrote metrics to {args.metrics_out}", file=sys.stderr)
    if args.trace_out:
        write_spans_json_lines(telemetry.tracer, args.trace_out)
        print(f"wrote {len(telemetry.tracer)} spans to {args.trace_out}",
              file=sys.stderr)
    if args.manifest_out:
        write_manifest(
            args.manifest_out,
            build_manifest(
                command, config=config, seed=seed, durations_s=durations_s
            ),
        )
        print(f"wrote manifest to {args.manifest_out}", file=sys.stderr)


def cmd_summary() -> int:
    from repro.analysis.tables import format_table
    from repro.core.config import PAPER
    from repro.reliability.eccmodel import ECCCacheModel
    from repro.reliability.sudokumodel import SuDokuReliabilityModel
    from repro.sttram.variation import effective_ber

    ber = effective_ber(35.0, 3.5, 0.020)
    model = SuDokuReliabilityModel(ber=ber)
    ecc6 = ECCCacheModel(t=6, ber=ber)
    rows = [
        ["BER (delta 35, 20 ms)", ber, PAPER.ber_delta35_20ms],
        ["SuDoku-X MTTF (s)", model.mttf_x_seconds(), PAPER.sudoku_x_mttf_s],
        ["SuDoku-Y MTTF (h)", model.mttf_y_seconds() / 3600, PAPER.sudoku_y_mttf_hours],
        ["SuDoku-Z FIT", model.fit_z(), PAPER.sudoku_z_fit],
        ["ECC-6 FIT", ecc6.fit(), PAPER.ecc_fit[5]],
        ["Z strength vs ECC-6", ecc6.fit() / model.fit_z(), PAPER.sudoku_z_vs_ecc6],
        ["overhead bits/line", 43.2, PAPER.overhead_bits_sudoku],
    ]
    print(format_table(["quantity", "model", "paper"], rows))
    return 0


def cmd_exhibits(args: argparse.Namespace) -> int:
    from repro.analysis.experiments import all_experiments
    from repro.analysis.tables import format_table

    only = args.only
    telemetry, make_progress = _build_telemetry(args)
    started = time.perf_counter()
    tracer = telemetry.tracer if telemetry is not None else None
    counter = (
        telemetry.metrics.counter(
            "exhibits_rendered_total", "Paper exhibits regenerated."
        )
        if telemetry is not None
        else None
    )
    progress = make_progress(None, "exhibits")
    matched = 0
    for exhibit in all_experiments():
        if only and only.lower() not in str(exhibit["title"]).lower():
            continue
        matched += 1
        span = (
            tracer.span("exhibit", title=str(exhibit["title"]))
            if tracer is not None
            else _NULL_CONTEXT
        )
        with span:
            print(f"== {exhibit['title']}")
            print(format_table(exhibit["headers"], exhibit["rows"]))
            if exhibit.get("notes"):
                print(f"notes: {exhibit['notes']}")
            print()
        if counter is not None:
            counter.inc()
        progress.update()
    progress.finish()
    if not matched:
        print(f"no exhibit title matches {only!r}", file=sys.stderr)
        return 1
    _export_telemetry(
        args, telemetry, "exhibits", {"only": only}, None,
        {"total": time.perf_counter() - started},
    )
    return 0


def _resilience_kwargs(args: argparse.Namespace) -> Dict[str, object]:
    """Sharded-runner keyword arguments from the resilience flags.

    :raises CheckpointError: on inconsistent flag combinations (one-line
        message; ``main`` turns it into a non-zero exit).  An unreadable
        or invalid ``--resume`` file raises later, from inside the
        runner, with the same one-line treatment.
    """
    from repro.resilience import CheckpointError

    if args.checkpoint_every and not (args.checkpoint or args.resume):
        raise CheckpointError(
            "--checkpoint-every requires --checkpoint (or --resume)"
        )
    return {
        "checkpoint_path": args.checkpoint or args.resume,
        "checkpoint_every": max(0, args.checkpoint_every),
        "resume_from": args.resume,
        "deadline_s": args.deadline,
    }


def _write_result_out(args: argparse.Namespace, payload: Dict[str, object]) -> None:
    if getattr(args, "result_out", ""):
        from repro.obs import atomic_write_json

        atomic_write_json(args.result_out, payload)
        print(f"wrote result to {args.result_out}", file=sys.stderr)


def _truncation_exit(result, default: int = 0) -> int:
    """Exit code for a possibly truncated campaign result.

    Deadline expiry is a *clean* stop (exit 0); an interrupt propagates
    the conventional 130 after exports have flushed.
    """
    if result.truncated:
        print(
            f"campaign truncated ({result.stop_reason}); "
            "partial results above, checkpoint flushed",
            file=sys.stderr,
        )
        if result.stop_reason == "interrupted":
            return 130
    return default


def _load_scenario_file(path: str):
    """Parse a ``--scenario`` JSON file into a :class:`FaultScenario`.

    Malformed files surface as a one-line ``repro: error:`` (via
    SystemExit), not a traceback -- the file is user input.
    """
    from repro.reliability.scenario import FaultScenario

    try:
        return FaultScenario.load(path)
    except (OSError, ValueError) as error:
        raise SystemExit(f"repro: error: --scenario {path!r}: {error}")


def _scenario_summary(scenario) -> str:
    """One-line human description of a scenario's active sources."""
    parts = [f"transient BER {scenario.transient_ber:g}"]
    if scenario.burst is not None and scenario.burst.rate > 0:
        lengths = ",".join(str(k) for k, _ in scenario.burst.length_pmf)
        parts.append(
            f"bursts rate {scenario.burst.rate:g} lengths {{{lengths}}}"
            + (
                f" interleave {scenario.burst.interleave}"
                if scenario.burst.interleave > 1 else ""
            )
        )
    if scenario.stuck is not None and scenario.stuck.ppm > 0:
        parts.append(f"stuck-at {scenario.stuck.ppm:g} ppm")
    return ", ".join(parts)


def cmd_campaign(args: argparse.Namespace) -> int:
    from repro.analysis.tables import format_table
    from repro.core.outcomes import Outcome
    from repro.parallel import run_sharded_campaign
    from repro.reliability.sudokumodel import SuDokuReliabilityModel
    from repro.resilience import ChaosPolicy

    level, ber = args.level, args.ber
    intervals, group_size, seed = args.intervals, args.group_size, args.seed
    telemetry, make_progress = _build_telemetry(args)
    resilience = _resilience_kwargs(args)
    policy = ChaosPolicy(
        plt_flip_rate=args.plt_flip_rate,
        map_swap_rate=args.map_swap_rate,
        visit_drop_rate=args.visit_drop_rate,
        visit_duplicate_rate=args.visit_duplicate_rate,
    )
    if args.scenario:
        # A mixed scenario routes through the scenario engine (whose
        # RNG model supports burst/stuck sources); the file is
        # authoritative, including its transient BER.
        from repro.parallel import run_sharded_scenario

        scenario = _load_scenario_file(args.scenario)
        started = time.perf_counter()
        print(
            f"running SuDoku-{level} scenario campaign: "
            f"{_scenario_summary(scenario)}, {intervals} intervals, "
            f"{group_size * group_size} lines"
            + (" [chaos enabled]" if policy.enabled else "")
            + (f" [{args.shards} shards]" if args.shards > 1 else "")
        )
        result = run_sharded_scenario(
            level, scenario, intervals, group_size,
            shards=args.shards, seed=seed, telemetry=telemetry,
            progress=make_progress(intervals, f"scenario-{level}"),
            chaos_policy=policy if policy.enabled else None,
            chaos_seed=args.chaos_seed,
            scrub_mode=args.scrub_mode, backend=args.backend,
            **resilience,
        )
        _print_scenario_result(level, scenario, result)
        _write_result_out(args, _scenario_payload(level, scenario, result))
        _export_telemetry(
            args, telemetry, "campaign",
            {
                "level": level, "scenario": scenario.as_dict(),
                "intervals": intervals, "group_size": group_size,
                "shards": args.shards, "chaos": policy.as_dict(),
            },
            seed,
            {"total": time.perf_counter() - started},
        )
        return _truncation_exit(result)
    started = time.perf_counter()
    print(
        f"running SuDoku-{level} campaign: BER {ber:g}, {intervals} intervals, "
        f"{group_size}-line groups, {group_size * group_size} lines"
        + (" [chaos enabled]" if policy.enabled else "")
        + (f" [{args.shards} shards]" if args.shards > 1 else "")
    )
    result = run_sharded_campaign(
        level, ber, intervals, group_size,
        shards=args.shards, seed=seed,
        telemetry=telemetry,
        progress=make_progress(intervals, f"campaign-{level}"),
        chaos_policy=policy if policy.enabled else None,
        chaos_seed=args.chaos_seed,
        scrub_mode=args.scrub_mode, backend=args.backend,
        **resilience,
    )
    model = SuDokuReliabilityModel(
        ber=ber, group_size=group_size, num_lines=group_size * group_size
    )
    predicted = {
        "X": model.cache_fail_x, "Y": model.cache_fail_y, "Z": model.cache_fail_z,
    }[level]()
    low, high = result.wilson_interval()
    rows = [
        ["intervals completed", result.intervals],
        ["measured P(fail)/interval", result.failure_probability],
        ["95% CI", f"[{low:.4f}, {high:.4f}]"],
        ["analytical model", predicted],
        ["SDC events", result.outcomes.get(Outcome.SDC.value, 0)],
    ]
    rows += [[f"outcome: {k}", v] for k, v in sorted(result.outcomes.items())]
    rows += [[f"metadata: {k}", v] for k, v in sorted(result.metadata.items())]
    print(format_table(["quantity", "value"], rows))
    _write_result_out(args, result.as_dict())
    _export_telemetry(
        args, telemetry, "campaign",
        {
            "level": level, "ber": ber, "intervals": intervals,
            "group_size": group_size, "shards": args.shards,
            "chaos": policy.as_dict(),
        },
        seed,
        {"total": time.perf_counter() - started},
    )
    return _truncation_exit(result)


def _print_scenario_result(scheme: str, scenario, result) -> None:
    from repro.analysis.tables import format_table
    from repro.core.outcomes import Outcome

    low, high = result.wilson_interval()
    rows = [
        ["scheme", scheme],
        ["intervals completed", result.intervals],
        ["measured P(fail)/interval", result.failure_probability],
        ["95% CI", f"[{low:.4f}, {high:.4f}]"],
        ["measured FIT", result.fit()],
        ["SDC events", result.outcomes.get(Outcome.SDC.value, 0)],
    ]
    rows += [[f"outcome: {k}", v] for k, v in sorted(result.outcomes.items())]
    rows += [[f"metadata: {k}", v] for k, v in sorted(result.metadata.items())]
    print(format_table(["quantity", "value"], rows))


def _scenario_payload(scheme: str, scenario, result) -> Dict[str, object]:
    """Result JSON for scenario runs: campaign aggregates + the spec."""
    payload = dict(result.as_dict())
    payload["scheme"] = scheme
    payload["scenario"] = scenario.as_dict()
    return payload


def cmd_scenario(args: argparse.Namespace) -> int:
    from repro.parallel import run_sharded_scenario
    from repro.reliability.scenario import (
        BurstSpec,
        FaultScenario,
        StuckSpec,
    )
    from repro.resilience import ChaosPolicy

    if args.scenario:
        scenario = _load_scenario_file(args.scenario)
    else:
        burst = (
            BurstSpec(
                rate=args.burst_rate,
                length_pmf=tuple(sorted(args.burst_lengths)),
                span=args.burst_span,
                alignment=args.burst_alignment,
                multiplicity=args.burst_multiplicity,
                interleave=args.interleave,
            )
            if args.burst_rate > 0 else None
        )
        stuck = StuckSpec(ppm=args.stuck_ppm) if args.stuck_ppm > 0 else None
        try:
            scenario = FaultScenario(
                transient_ber=args.ber, burst=burst, stuck=stuck
            )
        except ValueError as error:
            raise SystemExit(f"repro: error: {error}")
    telemetry, make_progress = _build_telemetry(args)
    resilience = _resilience_kwargs(args)
    policy = ChaosPolicy(
        plt_flip_rate=args.plt_flip_rate,
        map_swap_rate=args.map_swap_rate,
        visit_drop_rate=args.visit_drop_rate,
        visit_duplicate_rate=args.visit_duplicate_rate,
    )
    started = time.perf_counter()
    print(
        f"running {args.scheme} scenario campaign: "
        f"{_scenario_summary(scenario)}, {args.intervals} intervals, "
        f"{args.group_size * args.group_size} lines"
        + (" [chaos enabled]" if policy.enabled else "")
        + (f" [{args.shards} shards]" if args.shards > 1 else "")
    )
    result = run_sharded_scenario(
        args.scheme, scenario, args.intervals, args.group_size,
        shards=args.shards, seed=args.seed, telemetry=telemetry,
        progress=make_progress(args.intervals, f"scenario-{args.scheme}"),
        chaos_policy=policy if policy.enabled else None,
        chaos_seed=args.chaos_seed,
        scrub_mode=args.scrub_mode, backend=args.backend,
        **resilience,
    )
    _print_scenario_result(args.scheme, scenario, result)
    _write_result_out(args, _scenario_payload(args.scheme, scenario, result))
    _export_telemetry(
        args, telemetry, "scenario",
        {
            "scheme": args.scheme, "scenario": scenario.as_dict(),
            "intervals": args.intervals, "group_size": args.group_size,
            "shards": args.shards, "chaos": policy.as_dict(),
        },
        args.seed,
        {"total": time.perf_counter() - started},
    )
    return _truncation_exit(result)


def cmd_raresim(args: argparse.Namespace) -> int:
    from repro.analysis.tables import format_table
    from repro.parallel import run_sharded_raresim

    telemetry, make_progress = _build_telemetry(args)
    resilience = _resilience_kwargs(args)
    scenario = None
    ber = args.ber
    if args.scenario:
        scenario = _load_scenario_file(args.scenario)
        # The conditioned estimator needs a nonzero transient BER; the
        # scenario's transient field takes over when it sets one.
        if scenario.transient_ber > 0:
            ber = scenario.transient_ber
    started = time.perf_counter()
    print(
        f"running SuDoku-{args.level} conditional campaign: BER {ber:g}, "
        f"{args.trials} trials, {args.group_size}-line groups"
        + (f" [scenario: {_scenario_summary(scenario)}]" if scenario else "")
        + (f" [{args.shards} shards]" if args.shards > 1 else "")
    )
    result = run_sharded_raresim(
        args.level, ber, args.trials,
        args.group_size, args.num_groups,
        shards=args.shards, seed=args.seed, telemetry=telemetry,
        progress=make_progress(args.trials, f"raresim-{args.level}"),
        scrub_mode=args.scrub_mode, backend=args.backend,
        scenario=scenario,
        **resilience,
    )
    low, high = result.conditional_ci()
    rows = [
        ["trials completed", result.trials],
        ["conditional failures", result.conditional_failures],
        ["P(DUE | >=2 multi-bit lines)", result.conditional_failure_probability],
        ["95% CI", f"[{low:.4g}, {high:.4g}]"],
        ["conditioning probability", result.conditioning_probability],
        ["estimated cache FIT", result.fit()],
    ]
    print(format_table(["quantity", "value"], rows))
    _write_result_out(args, result.as_dict())
    _export_telemetry(
        args, telemetry, "raresim",
        {
            "level": args.level, "ber": args.ber, "trials": args.trials,
            "group_size": args.group_size, "num_groups": args.num_groups,
            "shards": args.shards,
        },
        args.seed,
        {"total": time.perf_counter() - started},
    )
    return _truncation_exit(result)


def cmd_chaos(args: argparse.Namespace) -> int:
    from repro.analysis.tables import format_table
    from repro.core.outcomes import Outcome
    from repro.parallel import run_sharded_campaign
    from repro.resilience import ChaosPolicy

    # Failure columns come from the taxonomy, not hand-picked strings:
    # a future failure-class Outcome gets a column automatically instead
    # of silently vanishing from the sweep table (the PR-4 bug class).
    failure_columns = [Outcome.SDC] + [o for o in Outcome if o.is_due]
    telemetry, make_progress = _build_telemetry(args)
    scenario = _load_scenario_file(args.scenario) if args.scenario else None
    started = time.perf_counter()
    total = len(args.levels) * len(args.plt_flip_rates)
    progress = make_progress(total, "chaos-sweep")
    print(
        f"chaos sweep: levels {','.join(args.levels)} x PLT flip rates "
        f"{args.plt_flip_rates} (map swap {args.map_swap_rate:g}), "
        f"BER {args.ber:g}, {args.intervals} intervals"
        + (f" [scenario: {_scenario_summary(scenario)}]" if scenario else "")
        + (f" [{args.shards} shards]" if args.shards > 1 else "")
    )
    rows = []
    records = []
    for level in args.levels:
        for rate in args.plt_flip_rates:
            policy = ChaosPolicy(
                plt_flip_rate=rate, map_swap_rate=args.map_swap_rate
            )
            if scenario is not None:
                from repro.parallel import run_sharded_scenario

                result = run_sharded_scenario(
                    level, scenario, args.intervals, args.group_size,
                    shards=args.shards, seed=args.seed,
                    telemetry=telemetry,
                    chaos_policy=policy if policy.enabled else None,
                    chaos_seed=args.chaos_seed,
                    scrub_mode=args.scrub_mode, backend=args.backend,
                )
            else:
                result = run_sharded_campaign(
                    level, args.ber, args.intervals, args.group_size,
                    shards=args.shards, seed=args.seed,
                    telemetry=telemetry,
                    chaos_policy=policy if policy.enabled else None,
                    chaos_seed=args.chaos_seed,
                    scrub_mode=args.scrub_mode, backend=args.backend,
                )
            meta = result.metadata
            rows.append([
                level, rate,
                *(result.outcomes.get(o.value, 0) for o in failure_columns),
                meta.get("plt_flips", 0) + meta.get("map_swaps", 0),
                meta.get("residual_crc_faults", 0)
                + meta.get("residual_recompute_faults", 0),
                meta.get("residual_rebuilt", 0),
            ])
            records.append({
                "level": level,
                "plt_flip_rate": rate,
                "map_swap_rate": args.map_swap_rate,
                "scenario": scenario.as_dict() if scenario else None,
                "result": result.as_dict(),
            })
            progress.update()
    progress.finish()
    print(format_table(
        ["level", "flip rate", *(o.value for o in failure_columns),
         "faults injected", "residual detected", "rebuilt"],
        rows,
    ))
    print(
        "sdc column must stay 0: metadata faults may cost availability "
        "(metadata_due) but never silent corruption"
    )
    _write_result_out(args, {"sweep": records})
    _export_telemetry(
        args, telemetry, "chaos",
        {
            "levels": args.levels, "plt_flip_rates": args.plt_flip_rates,
            "map_swap_rate": args.map_swap_rate, "ber": args.ber,
            "intervals": args.intervals, "group_size": args.group_size,
            "shards": args.shards,
        },
        args.seed,
        {"total": time.perf_counter() - started},
    )
    return 0


def cmd_perf(args: argparse.Namespace) -> int:
    from repro.analysis.tables import format_table
    from repro.perf.energy import edp_increase
    from repro.perf.system import compare_ideal_vs_sudoku, normalized_slowdown

    workloads, accesses, seed = args.workloads, args.accesses, args.seed
    telemetry, make_progress = _build_telemetry(args)
    started = time.perf_counter()
    progress = make_progress(len(workloads), "perf")
    rows = []
    for workload in workloads:
        print(f"simulating {workload}...", file=sys.stderr)
        results = compare_ideal_vs_sudoku(
            workload, accesses_per_core=accesses, seed=seed,
            telemetry=telemetry,
        )
        rows.append(
            [
                workload,
                normalized_slowdown(results) * 100,
                edp_increase(results["ideal"], results["sudoku"]) * 100,
                results["sudoku"].miss_rate,
            ]
        )
        progress.update()
    progress.finish()
    print(format_table(["workload", "slowdown %", "EDP +%", "miss rate"], rows))
    _export_telemetry(
        args, telemetry, "perf",
        {"workloads": workloads, "accesses": accesses},
        seed,
        {"total": time.perf_counter() - started},
    )
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns the process exit code.

    Checkpoint problems (bad ``--resume`` file, flag conflicts) become a
    one-line ``repro: error:`` message and a non-zero exit -- never a
    traceback.  An interrupt outside the campaign loops exits 130.
    """
    from repro.parallel import ShardError
    from repro.resilience import CheckpointError

    args = build_parser().parse_args(argv)
    try:
        if args.command == "summary":
            return cmd_summary()
        if args.command == "exhibits":
            return cmd_exhibits(args)
        if args.command == "campaign":
            return cmd_campaign(args)
        if args.command == "raresim":
            return cmd_raresim(args)
        if args.command == "chaos":
            return cmd_chaos(args)
        if args.command == "scenario":
            return cmd_scenario(args)
        if args.command == "perf":
            return cmd_perf(args)
        if args.command == "report":
            return cmd_report(args.output, args.with_performance)
        if args.command == "distance":
            return cmd_distance(args.samples)
        if args.command == "design":
            return cmd_design(args.delta, args.target_fit)
        if args.command == "lint":
            from repro.lint.cli import run_lint_command

            return run_lint_command(args)
        if args.command == "bench":
            from repro.bench.cli import run_bench_command

            return run_bench_command(args)
        if args.command == "serve":
            from repro.serve.cli import run_serve_command

            return run_serve_command(args)
    except CheckpointError as error:
        print(f"repro: error: {error}", file=sys.stderr)
        return 2
    except ShardError as error:
        print(f"repro: error: {error}", file=sys.stderr)
        return 3
    except KeyboardInterrupt:
        print("repro: interrupted", file=sys.stderr)
        return 130
    raise AssertionError(f"unhandled command {args.command!r}")


def cmd_design(delta: float, target_fit: float) -> int:
    from repro.analysis.tables import format_table
    from repro.reliability.designspace import (
        cheapest_meeting_target,
        enumerate_design_space,
        pareto_front,
    )

    points = enumerate_design_space(delta=delta)
    front = pareto_front(points, target_fit)
    rows = [
        [p.label, p.fit, p.overhead_bits_per_line, p.scrub_bandwidth_fraction]
        for p in front
    ]
    print(f"delta={delta:g}, target <= {target_fit:g} FIT: "
          f"{len(front)} Pareto-optimal configurations")
    print(format_table(["configuration", "FIT", "bits/line", "scrub bw"], rows))
    winner = cheapest_meeting_target(points, target_fit)
    if winner is None:
        print("no configuration meets the target")
        return 1
    print(f"cheapest: {winner.label} ({winner.overhead_bits_per_line:.1f} bits/line)")
    return 0


def cmd_distance(samples: int) -> int:
    import random

    from repro.analysis.tables import format_table
    from repro.coding.crc import CRC31_SUDOKU
    from repro.coding.crcdistance import (
        min_weight_multiple_bound,
        syndrome_table,
        verify_low_weight_detection,
    )

    report = min_weight_multiple_bound(CRC31_SUDOKU, data_bits=512)
    table = syndrome_table(CRC31_SUDOKU, data_bits=512)
    rng = random.Random(0)
    rows = [
        ["polynomial", CRC31_SUDOKU.name],
        ["payload bits", report.payload_bits],
        ["undetected patterns (exact, w<=4)", len(report.undetected)],
        ["proven detection distance", f">= {report.proven_distance_at_least}"],
    ]
    for weight in (5, 6, 7, 8):
        misses = verify_low_weight_detection(
            CRC31_SUDOKU, weight, samples=samples, rng=rng, table=table
        )
        rows.append([f"random misses at weight {weight} ({samples} samples)", misses])
    print(format_table(["quantity", "value"], rows))
    return 0


def cmd_report(output: str, with_performance: bool) -> int:
    from repro.analysis.reporting import write_report

    write_report(output, include_performance=with_performance)
    print(f"wrote {output}")
    return 0
