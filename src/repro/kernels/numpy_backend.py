"""The numpy backend: batched bit-plane kernels.

Lines are packed into an ``(N, words_per_line)`` little-endian uint64
plane matrix (:mod:`repro.kernels.planes`); the hot operations then run
as whole-matrix numpy expressions instead of per-line Python loops.

Batched line decode
-------------------

The expensive part of a scrub is ``LineCodec.decode`` per dirty line:
a ~543-iteration payload gather, ``r`` wide popcounts for the Hamming
syndrome, and a 64-step table CRC -- all over arbitrary-precision ints.
The vectorised pipeline computes the identical decision for N lines at
once:

* **Syndrome.**  For the positional Hamming construction, syndrome bit
  ``j`` is the parity of codeword bits whose 1-based position has bit
  ``j`` set; equivalently the full syndrome is the XOR of the 1-based
  positions of every *set* codeword bit.  With the codewords unpacked
  to an ``(N, n)`` bit matrix ``B``, that is one
  ``bitwise_xor.reduce(B * positions, axis=1)``.

* **CRC.**  The table CRC is affine over GF(2) in (init, message):
  each step is ``register = (register << 8) ^ table[(register >> s) ^
  byte]`` and the table itself is linear (``table[x ^ y] == table[x] ^
  table[y]``).  The batch pipeline runs the same 64 byte-steps, but on
  a length-N register vector -- 64 numpy ops regardless of N.

* **Corrected-path CRC re-check.**  Affinity also gives
  ``crc(m ^ e) == crc(m) ^ crc0(e)`` where ``crc0`` is the same
  polynomial with ``init=0, xorout=0``.  Flipping codeword bit ``p``
  changes the data by a known single-bit delta, so the scalar path's
  "recompute CRC of the repaired payload" collapses to two XORs against
  per-position delta tables built once per codec.

The pipeline is only engaged for codecs whose semantics it provably
matches (the stock :class:`~repro.core.linecodec.LineCodec`:
positional ``HammingSEC`` over ``data || CRC``, non-reflected
byte-aligned CRC, little-endian host); anything else falls back to the
scalar ``codec.decode`` per word, which is always correct.
"""

from __future__ import annotations

import sys
import weakref
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.coding.crc import CRC
from repro.coding.hamming import HammingSEC
from repro.core.linecodec import DecodeStatus, LineCodec, LineDecode
from repro.kernels.interface import KernelBackend
from repro.kernels.planes import pack_lines, words_per_line


class _LineCodecTables:
    """Precomputed vectorisation tables for one eligible ``LineCodec``."""

    def __init__(self, codec: LineCodec) -> None:
        layout = codec.layout
        ecc = layout.ecc
        crc = layout.crc
        self.n = ecc.n
        self.data_bits = layout.data_bits
        self.crc_bits = layout.crc_bits
        self.wpl = words_per_line(self.n)
        # Codeword bit index of payload bit j (the systematic gather).
        self._payload_gather = np.array(ecc._data_cw_shift, dtype=np.int64)
        # Syndrome = XOR of 1-based positions of set codeword bits.
        self._positions = np.arange(1, self.n + 1, dtype=np.uint16)
        # Table CRC as uint64 vector ops (single-width constants avoid
        # the silent uint64/int promotion to float64).
        self._crc_table = np.array(crc._table, dtype=np.uint64)
        self._crc_shift = np.uint64(crc.width - 8)
        self._crc_mask = np.uint64(crc._mask)
        self._crc_init = np.uint64(crc.init)
        self._crc_xorout = np.uint64(crc.xorout)
        self._ff = np.uint64(0xFF)
        self._eight = np.uint64(8)
        self._byte_powers = np.array(
            [1 << (8 * i) for i in range((self.crc_bits + 7) // 8)],
            dtype=np.uint64,
        )
        # Per-codeword-position CRC deltas for the corrected re-check:
        # flipping position p changes computed CRC by dcomp[p] (payload
        # data bit) and the stored CRC field by dstore[p] (payload CRC
        # bit); check-bit positions change neither.
        homogeneous = CRC(
            crc.width, crc.poly, init=0, refin=False, refout=False, xorout=0
        )
        self._dcomp = np.zeros(self.n, dtype=np.uint64)
        self._dstore = np.zeros(self.n, dtype=np.uint64)
        self._payload_index = np.full(self.n, -1, dtype=np.int64)
        for j, position in enumerate(ecc._data_cw_shift):
            self._payload_index[position] = j
            if j < self.data_bits:
                self._dcomp[position] = homogeneous.compute_int(
                    1 << j, self.data_bits
                )
            else:
                self._dstore[position] = 1 << (j - self.data_bits)

    def decode_batch(self, words: Sequence[int]) -> List[LineDecode]:
        clean, accepted, flip_position, data_blob, nbytes = self._classify(words)
        results: List[LineDecode] = []
        for i, word in enumerate(words):
            if clean[i]:
                data = int.from_bytes(
                    data_blob[i * nbytes:(i + 1) * nbytes], "little"
                )
                results.append(LineDecode(DecodeStatus.CLEAN, word, data))
            elif accepted[i]:
                position = int(flip_position[i])
                data = int.from_bytes(
                    data_blob[i * nbytes:(i + 1) * nbytes], "little"
                )
                payload_bit = int(self._payload_index[position])
                if 0 <= payload_bit < self.data_bits:
                    data ^= 1 << payload_bit
                results.append(
                    LineDecode(
                        DecodeStatus.CORRECTED,
                        word ^ (1 << position),
                        data,
                        position,
                    )
                )
            else:
                results.append(LineDecode(DecodeStatus.UNCORRECTABLE, word, None))
        return results

    def decode_clean_batch(self, words: Sequence[int]) -> List[LineDecode]:
        """Payload extraction only, for words promised to decode CLEAN.

        A clean decode is ``LineDecode(CLEAN, word, data)``; the
        syndrome multiply-reduce and the 64-step CRC register loop (the
        bulk of :meth:`_classify`) exist solely to *establish* that
        verdict, so when the caller already knows it they collapse to
        the systematic payload gather.
        """
        rows = pack_lines(words, self.n)
        byte_matrix = rows.view(np.uint8).reshape(len(words), self.wpl * 8)
        bits = np.unpackbits(byte_matrix, axis=1, bitorder="little")[:, : self.n]
        payload_bits = bits[:, self._payload_gather]
        data_bytes = np.packbits(
            payload_bits[:, : self.data_bits], axis=1, bitorder="little"
        )
        blob = data_bytes.tobytes()
        nbytes = self.data_bits // 8
        return [
            LineDecode(
                DecodeStatus.CLEAN,
                word,
                int.from_bytes(blob[i * nbytes:(i + 1) * nbytes], "little"),
            )
            for i, word in enumerate(words)
        ]

    def verify_batch(self, words: Sequence[int]) -> List[bool]:
        clean, _, _, _, _ = self._classify(words)
        return [bool(flag) for flag in clean]

    def _classify(self, words: Sequence[int]):
        """Shared vector pipeline: per-row decision masks + data bytes."""
        rows = pack_lines(words, self.n)
        byte_matrix = rows.view(np.uint8).reshape(len(words), self.wpl * 8)
        bits = np.unpackbits(byte_matrix, axis=1, bitorder="little")[:, : self.n]
        syndrome = np.bitwise_xor.reduce(
            bits.astype(np.uint16) * self._positions, axis=1
        ).astype(np.int64)
        payload_bits = bits[:, self._payload_gather]
        data_bytes = np.packbits(
            payload_bits[:, : self.data_bits], axis=1, bitorder="little"
        )
        crc_bytes = np.packbits(
            payload_bits[:, self.data_bits:], axis=1, bitorder="little"
        )
        stored_crc = (crc_bytes.astype(np.uint64) * self._byte_powers).sum(
            axis=1, dtype=np.uint64
        )
        register = np.full(len(words), self._crc_init, dtype=np.uint64)
        for column in range(data_bytes.shape[1]):
            index = (
                (register >> self._crc_shift)
                ^ data_bytes[:, column].astype(np.uint64)
            ) & self._ff
            register = ((register << self._eight) & self._crc_mask) ^ (
                self._crc_table[index]
            )
        computed = register ^ self._crc_xorout
        crc_ok = computed == stored_crc
        clean = crc_ok & (syndrome == 0)
        correctable = (syndrome != 0) & (syndrome <= self.n)
        flip_position = np.where(correctable, syndrome - 1, 0)
        accepted = correctable & (
            (computed ^ self._dcomp[flip_position])
            == (stored_crc ^ self._dstore[flip_position])
        )
        return clean, accepted, flip_position, data_bytes.tobytes(), (
            self.data_bits // 8
        )


#: Per-codec table cache.  Keyed weakly so throwaway codecs (tests build
#: thousands) do not pin their tables forever.
_TABLE_CACHE: "weakref.WeakKeyDictionary[LineCodec, _LineCodecTables]" = (
    weakref.WeakKeyDictionary()
)


def _tables_for(codec) -> Optional[_LineCodecTables]:
    """Vectorisation tables for a codec, or None when ineligible.

    Eligibility is deliberately conservative: exactly the stock
    ``LineCodec`` (subclasses may override ``decode``), a positional
    ``HammingSEC``, a non-reflected byte-aligned CRC of width <= 64,
    and a little-endian host (the plane layout reinterprets raw bytes).
    """
    if type(codec) is not LineCodec or sys.byteorder != "little":
        return None
    tables = _TABLE_CACHE.get(codec)
    if tables is not None:
        return tables
    layout = codec.layout
    crc = layout.crc
    if (
        type(layout.ecc) is not HammingSEC
        or crc.refin
        or crc.refout
        or crc.width > 64
        or layout.data_bits % 8
    ):
        return None
    tables = _LineCodecTables(codec)
    _TABLE_CACHE[codec] = tables
    return tables


class NumpyBackend(KernelBackend):
    """Batched uint64 bit-plane kernels (bit-identical to reference)."""

    name = "numpy"
    batched = True

    def scatter_fault_vectors(
        self, flat: np.ndarray, line_bits: int
    ) -> Dict[int, int]:
        # Vectorised divmod; the OR-accumulation stays a dict loop over
        # *faults* (masks are arbitrary-precision ints), preserving the
        # reference backend's first-occurrence insertion order.
        indices = np.asarray(flat, dtype=np.int64)
        lines = (indices // line_bits).tolist()
        bits = (indices % line_bits).tolist()
        vectors: Dict[int, int] = {}
        for line_index, bit_position in zip(lines, bits):
            vectors[line_index] = vectors.get(line_index, 0) | (1 << bit_position)
        return vectors

    def fold_line_masks(
        self, events: Iterable[Tuple[int, int]], num_lines: int
    ) -> Dict[int, int]:
        # Burst events are few (a binomial draw at per-line *event*
        # rates) and their masks are arbitrary-precision ints; the
        # reference fold is already O(events).
        vectors: Dict[int, int] = {}
        for line_index, mask in events:
            if line_index >= num_lines:
                continue
            vectors[line_index] = vectors.get(line_index, 0) | mask
        return vectors

    def xor_fold(self, words: Sequence[int], line_bits: int) -> int:
        words = list(words)
        if not words:
            return 0
        planes = pack_lines(words, line_bits)
        folded = np.bitwise_xor.reduce(planes, axis=0)
        return int.from_bytes(folded.tobytes(), "little")

    def batch_decode(self, codec, words: Sequence[int]) -> List[object]:
        words = list(words)
        if not words:
            return []
        tables = _tables_for(codec)
        if tables is None:
            return [codec.decode(word) for word in words]
        return tables.decode_batch(words)

    def batch_decode_clean(self, codec, words: Sequence[int]) -> List[object]:
        words = list(words)
        if not words:
            return []
        tables = _tables_for(codec)
        if tables is None:
            return [codec.decode(word) for word in words]
        return tables.decode_clean_batch(words)

    def batch_verify(self, codec, words: Sequence[int]) -> List[bool]:
        words = list(words)
        if not words:
            return []
        tables = _tables_for(codec)
        if tables is None:
            return [codec.verify(word) for word in words]
        return tables.verify_batch(words)

    def dirty_lines(
        self, stored: Sequence[int], golden: Sequence[int]
    ) -> List[int]:
        # Int-list storage: the comparison is already O(lines) with no
        # per-line decode; numpy cannot beat it without a repack.
        return [
            index
            for index, (stored_word, golden_word) in enumerate(zip(stored, golden))
            if stored_word != golden_word
        ]

    def dirty_from_planes(
        self, stored: np.ndarray, golden: np.ndarray
    ) -> List[int]:
        return np.flatnonzero((stored != golden).any(axis=1)).tolist()
