"""The kernel backend interface.

A :class:`KernelBackend` supplies the per-group *bulk* operations the
engines, injectors, and codecs would otherwise run as per-line Python
loops: fault-vector scatter, burst mask folding, XOR parity folds,
batched syndrome/CRC line decodes, and dirty-population reduction over
plane-backed storage.

The contract every backend must honour is **bit-identity**: for the
same inputs, every operation returns exactly what the reference
(pure-Python) implementation returns -- same values, same dict
insertion order, same ``LineDecode`` fields.  Backends are pure
compute; they never touch an RNG, so routing through a different
backend cannot perturb a campaign's random stream.  The equivalence
suite (``tests/kernels``) pins this across every scheme and fault
model; see docs/kernels.md.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

import numpy as np


class KernelBackend:
    """Bulk-operation provider; see :mod:`repro.kernels` for the registry."""

    #: Registry name ("reference" or "numpy").
    name = "abstract"
    #: True when ``batch_decode`` is genuinely vectorised -- callers use
    #: this to decide whether prefetching whole groups is worthwhile.
    batched = False

    # -- fault-vector construction ------------------------------------------------

    def scatter_fault_vectors(
        self, flat: np.ndarray, line_bits: int
    ) -> Dict[int, int]:
        """Flat bit indices -> ``{line_index: error_mask}``.

        ``flat`` holds distinct indices into the ``num_lines * line_bits``
        bit population (the transient injector's binomial scatter).  The
        returned dict preserves first-occurrence order of ``flat``.
        """
        raise NotImplementedError

    def fold_line_masks(
        self, events: Iterable[Tuple[int, int]], num_lines: int
    ) -> Dict[int, int]:
        """(line_index, mask) events -> OR-folded per-line error masks.

        Events at or past ``num_lines`` are clipped (array-edge bursts).
        Insertion order of the returned dict is first-occurrence order
        of the surviving events.
        """
        raise NotImplementedError

    # -- parity folds --------------------------------------------------------------

    def xor_fold(self, words: Sequence[int], line_bits: int) -> int:
        """XOR of all words -- the RAID-4 group parity fold."""
        raise NotImplementedError

    # -- line decodes --------------------------------------------------------------

    def batch_decode(self, codec, words: Sequence[int]) -> List[object]:
        """Decode many stored words; element i is ``codec.decode(words[i])``.

        Backends may only accelerate codecs they can prove bit-identical
        decode semantics for; anything else must fall back to the scalar
        ``codec.decode`` per word.
        """
        raise NotImplementedError

    def batch_decode_clean(self, codec, words: Sequence[int]) -> List[object]:
        """Decode words the caller guarantees are valid clean codewords.

        The contract is the same as :meth:`batch_decode` -- element i
        must equal ``codec.decode(words[i])`` exactly -- but the caller
        promises every word decodes ``CLEAN`` (e.g. its stored copy
        still matches golden, and everything written went through the
        codec).  Backends may exploit the promise to skip the
        syndrome/CRC machinery and only extract the payload.
        """
        raise NotImplementedError

    def batch_verify(self, codec, words: Sequence[int]) -> List[bool]:
        """Syndrome/CRC verdict per word; element i is ``codec.verify(words[i])``."""
        raise NotImplementedError

    # -- dirty-population reduction ------------------------------------------------

    def dirty_lines(
        self, stored: Sequence[int], golden: Sequence[int]
    ) -> List[int]:
        """Sorted indices where the stored word diverges from golden."""
        raise NotImplementedError

    def dirty_from_planes(
        self, stored: np.ndarray, golden: np.ndarray
    ) -> List[int]:
        """Plane-matrix variant of :meth:`dirty_lines` (same contract)."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<KernelBackend {self.name}>"
