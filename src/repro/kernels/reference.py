"""The reference backend: the historical pure-Python loops, verbatim.

Every method here is the loop the call sites ran before the kernel
interface existed (transient scatter from ``TransientFaultInjector``,
burst folding from ``BurstFaultInjector``, ``xor_reduce`` parity folds,
scalar ``codec.decode``/``codec.verify``).  This backend *is* the
specification the numpy backend must match bit for bit; keep it boring.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

import numpy as np

from repro.coding.parity import xor_reduce
from repro.kernels.interface import KernelBackend


class ReferenceBackend(KernelBackend):
    """Pure-Python bulk operations (the pre-kernel behaviour)."""

    name = "reference"
    batched = False

    def scatter_fault_vectors(
        self, flat: np.ndarray, line_bits: int
    ) -> Dict[int, int]:
        vectors: Dict[int, int] = {}
        for index in flat:
            line_index, bit_position = divmod(int(index), line_bits)
            vectors[line_index] = vectors.get(line_index, 0) | (1 << bit_position)
        return vectors

    def fold_line_masks(
        self, events: Iterable[Tuple[int, int]], num_lines: int
    ) -> Dict[int, int]:
        vectors: Dict[int, int] = {}
        for line_index, mask in events:
            if line_index >= num_lines:
                continue
            vectors[line_index] = vectors.get(line_index, 0) | mask
        return vectors

    def xor_fold(self, words: Sequence[int], line_bits: int) -> int:
        return xor_reduce(words)

    def batch_decode(self, codec, words: Sequence[int]) -> List[object]:
        return [codec.decode(word) for word in words]

    def batch_decode_clean(self, codec, words: Sequence[int]) -> List[object]:
        # The clean promise buys nothing scalar-side; decode as usual.
        return [codec.decode(word) for word in words]

    def batch_verify(self, codec, words: Sequence[int]) -> List[bool]:
        return [codec.verify(word) for word in words]

    def dirty_lines(
        self, stored: Sequence[int], golden: Sequence[int]
    ) -> List[int]:
        return [
            index
            for index, (stored_word, golden_word) in enumerate(zip(stored, golden))
            if stored_word != golden_word
        ]

    def dirty_from_planes(
        self, stored: np.ndarray, golden: np.ndarray
    ) -> List[int]:
        return [
            index
            for index in range(stored.shape[0])
            if not bool(np.array_equal(stored[index], golden[index]))
        ]
