"""Bit-plane packing: lines as rows of a numpy ``uint64`` matrix.

The kernels represent a population of ``line_bits``-wide lines as an
``(num_lines, words_per_line)`` array of little-endian ``uint64`` words:
bit ``b`` of line ``i`` lives at ``planes[i, b // 64] >> (b % 64) & 1``.
This is byte-for-byte the little-endian serialisation the rest of the
code base already uses for CRC computation and PLT entry checksums
(``value.to_bytes(..., "little")``), so packing is a straight
reinterpretation, not a permutation.

Conversions between the Python-int line representation (arbitrary
precision, used by the reference backend and every public API) and the
plane representation live here so the two backends and the plane-backed
array storage agree on exactly one layout.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np


def words_per_line(line_bits: int) -> int:
    """``uint64`` words needed to hold one line (rounded up)."""
    if line_bits <= 0:
        raise ValueError("line_bits must be positive")
    return (line_bits + 63) // 64


def pack_line(value: int, line_bits: int) -> np.ndarray:
    """One line int -> a ``(words_per_line,)`` little-endian uint64 row."""
    nbytes = words_per_line(line_bits) * 8
    return np.frombuffer(value.to_bytes(nbytes, "little"), dtype="<u8")


def unpack_line(row: np.ndarray) -> int:
    """A plane row -> the line value as a Python int."""
    return int.from_bytes(np.ascontiguousarray(row, dtype="<u8").tobytes(), "little")


def pack_lines(values: Sequence[int], line_bits: int) -> np.ndarray:
    """Line ints -> an ``(N, words_per_line)`` little-endian uint64 matrix.

    The serialisation loop is O(N) Python, but each step is a single
    ``int.to_bytes`` -- the unavoidable toll booth between arbitrary-
    precision ints and fixed-width planes.  Everything downstream of
    this call is vectorised.
    """
    wpl = words_per_line(line_bits)
    nbytes = wpl * 8
    buffer = bytearray(len(values) * nbytes)
    offset = 0
    for value in values:
        buffer[offset:offset + nbytes] = value.to_bytes(nbytes, "little")
        offset += nbytes
    return np.frombuffer(bytes(buffer), dtype="<u8").reshape(len(values), wpl)


def unpack_lines(rows: np.ndarray) -> List[int]:
    """An ``(N, words_per_line)`` plane matrix -> line values as ints."""
    matrix = np.ascontiguousarray(rows, dtype="<u8")
    raw = matrix.tobytes()
    nbytes = matrix.shape[1] * 8
    return [
        int.from_bytes(raw[offset:offset + nbytes], "little")
        for offset in range(0, len(raw), nbytes)
    ]
