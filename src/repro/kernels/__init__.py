"""Pluggable bit-plane kernel backends.

``get_backend("reference")`` returns the historical pure-Python loops;
``get_backend("numpy")`` returns the batched uint64 bit-plane kernels.
Both honour the bit-identity contract documented on
:class:`~repro.kernels.interface.KernelBackend` and pinned by
``tests/kernels``; see docs/kernels.md for the layout and guarantees.
"""

from __future__ import annotations

from typing import Dict, Optional, Union

from repro.kernels.interface import KernelBackend
from repro.kernels.numpy_backend import NumpyBackend
from repro.kernels.reference import ReferenceBackend

#: Registry of constructable backends, in documentation order.
BACKENDS = {
    "reference": ReferenceBackend,
    "numpy": NumpyBackend,
}

#: Valid ``--backend`` values, for CLI choices and shard validation.
BACKEND_NAMES = tuple(BACKENDS)

_INSTANCES: Dict[str, KernelBackend] = {}


def get_backend(name: str = "reference") -> KernelBackend:
    """The singleton backend registered under ``name``.

    Backends are stateless (caches only), so one shared instance per
    name is safe and keeps per-codec decode tables warm across engines.
    """
    try:
        factory = BACKENDS[name]
    except KeyError:
        raise ValueError(
            f"unknown kernel backend {name!r}; expected one of {BACKEND_NAMES}"
        ) from None
    instance = _INSTANCES.get(name)
    if instance is None:
        instance = factory()
        _INSTANCES[name] = instance
    return instance


def resolve_backend(
    spec: Optional[Union[str, KernelBackend]]
) -> KernelBackend:
    """Normalise a backend argument: None -> reference, str -> lookup."""
    if spec is None:
        return get_backend("reference")
    if isinstance(spec, KernelBackend):
        return spec
    return get_backend(spec)


__all__ = [
    "BACKENDS",
    "BACKEND_NAMES",
    "KernelBackend",
    "NumpyBackend",
    "ReferenceBackend",
    "get_backend",
    "resolve_backend",
]
