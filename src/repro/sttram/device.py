"""STTRAM cell retention physics (paper Eq. 1).

An STTRAM cell stores data as the magnetic orientation of the free layer
of an MTJ.  Thermal noise randomly reverses that orientation; the
robustness of a cell is its *thermal stability factor* Delta.  The paper
models the flip process as Poisson with rate

    lambda = f0 * exp(-Delta)        (f0 = 1 GHz attempt frequency)

so the probability that a cell flips at least once during a window of
``t_s`` seconds is

    p_cell(t_s) = 1 - exp(-lambda * t_s)                       (Eq. 1)

Critically -- and unlike DRAM charge leakage -- the flips are memoryless:
the probability of a flip in the next window is independent of when the
cell was last written, which is why DRAM-style refresh does not help and
scrubbing + ECC is required (paper sections I, II-C).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

#: Thermal attempt frequency f0 used throughout the paper (1 GHz).
THERMAL_ATTEMPT_FREQUENCY_HZ: float = 1e9


def flip_rate(delta: float, attempt_frequency_hz: float = THERMAL_ATTEMPT_FREQUENCY_HZ) -> float:
    """Poisson flip rate lambda = f0 * exp(-Delta), in flips/second."""
    if attempt_frequency_hz <= 0:
        raise ValueError("attempt frequency must be positive")
    return attempt_frequency_hz * math.exp(-delta)


def flip_probability(
    delta: float,
    interval_s: float,
    attempt_frequency_hz: float = THERMAL_ATTEMPT_FREQUENCY_HZ,
) -> float:
    """Eq. (1): probability a cell flips within ``interval_s`` seconds.

    Uses ``-expm1`` for numerical fidelity at the tiny rates of
    well-retained cells (Delta = 60 gives probabilities around 1e-17).
    """
    if interval_s < 0:
        raise ValueError("interval must be non-negative")
    rate = flip_rate(delta, attempt_frequency_hz)
    return -math.expm1(-rate * interval_s)


def retention_mttf_seconds(
    delta: float,
    attempt_frequency_hz: float = THERMAL_ATTEMPT_FREQUENCY_HZ,
) -> float:
    """Mean time to flip of a single cell: 1 / lambda seconds.

    For Delta = 35 this is ~18 days, the figure quoted in the paper's
    introduction (before accounting for process variation).
    """
    return 1.0 / flip_rate(delta, attempt_frequency_hz)


@dataclass(frozen=True)
class STTRAMCell:
    """A single STTRAM cell characterised by its thermal stability.

    The object is a value type used when reasoning about individual cells
    (e.g. sampling per-cell Delta under process variation); bulk arrays
    never materialise cell objects.
    """

    delta: float
    attempt_frequency_hz: float = THERMAL_ATTEMPT_FREQUENCY_HZ

    def __post_init__(self) -> None:
        if self.delta <= 0:
            raise ValueError("thermal stability factor must be positive")
        if self.attempt_frequency_hz <= 0:
            raise ValueError("attempt frequency must be positive")

    @property
    def rate(self) -> float:
        """Flip rate lambda in flips/second."""
        return flip_rate(self.delta, self.attempt_frequency_hz)

    def flip_probability(self, interval_s: float) -> float:
        """Probability of at least one flip within the interval."""
        return flip_probability(self.delta, interval_s, self.attempt_frequency_hz)

    def mttf_seconds(self) -> float:
        """Mean time to the first flip."""
        return retention_mttf_seconds(self.delta, self.attempt_frequency_hz)

    def survival_probability(self, interval_s: float) -> float:
        """Probability of *no* flip within the interval."""
        return math.exp(-self.rate * interval_s)
