"""Process variation in thermal stability and the effective bit error rate.

Industry data (paper section I, refs [1], [5], [8]) shows up to 10 %
standard deviation in the thermal stability factor Delta due to process
variation.  Because the flip rate depends *exponentially* on Delta, the
weak tail of the distribution dominates the array's error rate: a nominal
Delta = 35 cell has an 18-day MTTF, but averaging over Delta ~ N(35, 3.5)
drops the mean cell MTTF to about an hour and pushes the 20 ms bit error
rate to the 5.3e-6 the paper designs for (Table I).

The *effective BER* is the variation-averaged Eq. (1):

    BER(t) = E_Delta[ 1 - exp(-f0 * exp(-Delta) * t) ],  Delta ~ N(mu, sigma)

computed here by adaptive quadrature, split at the knee of the integrand
(Delta = ln(f0 * t)) where the exponential transitions from ~1 to ~0.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np
from scipy import integrate, stats

from repro.core.rng import SeedLike, resolve_rng
from repro.sttram.device import THERMAL_ATTEMPT_FREQUENCY_HZ, flip_probability


@dataclass(frozen=True)
class DeltaDistribution:
    """Gaussian process-variation model for the thermal stability factor.

    :param mean: nominal Delta (35 at the 22 nm node, 60 at 32 nm).
    :param sigma_fraction: normalised standard deviation (0.10 = "10 % sigma").
    """

    mean: float
    sigma_fraction: float = 0.10

    def __post_init__(self) -> None:
        if self.mean <= 0:
            raise ValueError("mean Delta must be positive")
        if self.sigma_fraction < 0:
            raise ValueError("sigma fraction must be non-negative")

    @property
    def sigma(self) -> float:
        """Absolute standard deviation of Delta."""
        return self.mean * self.sigma_fraction

    def sample(
        self,
        count: int,
        rng: Optional[np.random.Generator] = None,
        *,
        seed: Optional[SeedLike] = None,
    ) -> np.ndarray:
        """Draw per-cell Delta values (truncated at a small positive floor).

        Truncation only matters for sigma fractions far beyond the paper's
        10 %; it guards the physics (Delta must be positive) without
        disturbing the statistics in the studied regime.
        """
        generator = resolve_rng(rng, seed, owner="DeltaDistribution.sample")
        values = generator.normal(self.mean, self.sigma, size=count)
        return np.clip(values, 1e-6, None)

    def effective_ber(
        self,
        interval_s: float,
        attempt_frequency_hz: float = THERMAL_ATTEMPT_FREQUENCY_HZ,
    ) -> float:
        """Variation-averaged flip probability over ``interval_s``."""
        return effective_ber(
            self.mean, self.sigma, interval_s, attempt_frequency_hz
        )

    def mean_cell_mttf_seconds(
        self, attempt_frequency_hz: float = THERMAL_ATTEMPT_FREQUENCY_HZ
    ) -> float:
        """Mean time to failure of a random cell under variation."""
        return mean_cell_mttf_seconds(
            self.mean, self.sigma, attempt_frequency_hz
        )


def effective_ber(
    mean_delta: float,
    sigma_delta: float,
    interval_s: float,
    attempt_frequency_hz: float = THERMAL_ATTEMPT_FREQUENCY_HZ,
) -> float:
    """E_Delta[p_cell(interval)] for Delta ~ N(mean, sigma).

    This is the quantity the paper calls the bit error rate "within the
    scrub interval"; with (35, 3.5, 20 ms) it reproduces Table I's
    5.3e-6 figure (to model precision).
    """
    if sigma_delta < 0:
        raise ValueError("sigma must be non-negative")
    if interval_s < 0:
        raise ValueError("interval must be non-negative")
    if interval_s == 0:
        return 0.0
    if sigma_delta == 0:
        return flip_probability(mean_delta, interval_s, attempt_frequency_hz)

    pdf = stats.norm(loc=mean_delta, scale=sigma_delta).pdf

    def integrand(delta: float) -> float:
        return flip_probability(delta, interval_s, attempt_frequency_hz) * pdf(delta)

    # The flip probability is ~1 below the knee and decays exponentially
    # above it; split the integral there so quadrature resolves both sides.
    knee = math.log(attempt_frequency_hz * interval_s) if attempt_frequency_hz * interval_s > 0 else 0.0
    low = mean_delta - 12.0 * sigma_delta
    high = mean_delta + 12.0 * sigma_delta
    points = sorted({max(low, min(knee, high)), max(low, min(knee + 3, high))})

    total = 0.0
    segments = [low, *points, high]
    for start, stop in zip(segments, segments[1:]):
        if stop <= start:
            continue
        value, _ = integrate.quad(integrand, start, stop, limit=200)
        total += value
    # Mass below the integration window has flip probability ~1.
    total += stats.norm(loc=mean_delta, scale=sigma_delta).cdf(low)
    return min(total, 1.0)


def mean_cell_mttf_seconds(
    mean_delta: float,
    sigma_delta: float,
    attempt_frequency_hz: float = THERMAL_ATTEMPT_FREQUENCY_HZ,
) -> float:
    """Mean cell failure time under variation, 1 / E[lambda].

    E[lambda] = f0 * E[exp(-Delta)] = f0 * exp(-mu + sigma^2 / 2) by the
    lognormal mean; for (35, 3.5) this is roughly an hour -- the "it takes
    only one hour for a cell to fail" quote from the paper's introduction.
    """
    if sigma_delta < 0:
        raise ValueError("sigma must be non-negative")
    expected_rate = attempt_frequency_hz * math.exp(
        -mean_delta + 0.5 * sigma_delta * sigma_delta
    )
    return 1.0 / expected_rate


def expected_faulty_bits(
    num_bits: int,
    mean_delta: float,
    sigma_delta: float,
    interval_s: float,
    attempt_frequency_hz: float = THERMAL_ATTEMPT_FREQUENCY_HZ,
) -> float:
    """Expected number of flipped bits in an array over one interval.

    The paper's example: a 64 MB cache (2^29 data bits) at Delta = 35,
    sigma = 10 %, 20 ms expects ~2880 flipped bits.
    """
    if num_bits < 0:
        raise ValueError("num_bits must be non-negative")
    return num_bits * effective_ber(
        mean_delta, sigma_delta, interval_s, attempt_frequency_hz
    )
