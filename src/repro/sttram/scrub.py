"""The periodic scrub engine.

Because STTRAM retention failures are memoryless, the only way to bound
the number of accumulated faults is to periodically *scrub*: read every
line, run error correction, and write back the corrected value (paper
section II-D).  The scrub interval (default 20 ms) bounds the per-bit
error probability each correction must face.

:class:`ScrubEngine` coordinates one scrub pass over an array through a
scheme object implementing :class:`LineScrubber` -- the SuDoku engines and
every baseline satisfy this protocol -- and accounts the outcomes plus the
time the scrub kept the cache busy (used by the performance model).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Optional, Protocol, Union

from repro.core.outcomes import (
    Outcome,
    is_corrected_label,
    is_due_label,
    is_failure_label,
)
from repro.kernels import KernelBackend
from repro.sttram.array import STTRAMArray


class LineScrubber(Protocol):
    """Protocol for correction schemes driven by the scrub engine.

    ``scrub_line`` must inspect line ``index``, correct it if possible
    (writing the repaired value back into the array) and return an outcome
    label.  The scrub engine treats labels opaquely apart from the
    conventional values listed in :class:`ScrubReport`.
    """

    def scrub_line(self, index: int) -> str:
        """Check and repair one line; return an outcome label."""
        ...


@dataclass
class ScrubReport:
    """Aggregate of one (or more) scrub passes.

    ``outcomes`` counts the labels returned by the scheme.  Conventional
    labels (see :mod:`repro.core.outcomes`): ``clean``, ``corrected_ecc1``,
    ``corrected_raid4``, ``corrected_sdr``, ``corrected_hash2``, ``due``,
    ``sdc``.
    """

    lines_scrubbed: int = 0
    outcomes: Counter = field(default_factory=Counter)
    busy_time_s: float = 0.0

    def merge(self, other: "ScrubReport") -> None:
        """Fold another report into this one."""
        self.lines_scrubbed += other.lines_scrubbed
        self.outcomes.update(other.outcomes)
        self.busy_time_s += other.busy_time_s

    @property
    def uncorrectable(self) -> int:
        """Detected-uncorrectable lines in this report.

        Counts every DUE-class label through the
        :mod:`repro.core.outcomes` taxonomy -- both ``due`` (data-caused)
        and ``metadata_due`` (a quarantined parity entry refused the
        repair).  Reading only ``due`` here was a real undercounting bug:
        a campaign whose only failures were metadata-caused reported
        ``failed == False``.
        """
        return sum(
            count for label, count in self.outcomes.items()
            if is_due_label(label)
        )

    @property
    def silent_corruptions(self) -> int:
        """Silently miscorrected lines (SDC) in this report."""
        return self.outcomes.get(Outcome.SDC.value, 0)

    @property
    def failures(self) -> int:
        """Total failed lines (any DUE-class outcome or SDC)."""
        return sum(
            count for label, count in self.outcomes.items()
            if is_failure_label(label)
        )

    @property
    def failed(self) -> bool:
        """Did the cache fail this scrub (any DUE, metadata-DUE, or SDC)?

        Agrees with the Monte-Carlo interval failure predicate
        (:mod:`repro.reliability.montecarlo`) by construction: both
        delegate to :func:`repro.core.outcomes.is_failure_label`.
        """
        return self.failures > 0


@dataclass(frozen=True)
class ScrubTiming:
    """Latency parameters for accounting scrub busy time.

    :param line_read_s: array read latency per line (9 ns for the paper's
        STTRAM LLC).
    :param line_write_s: array write latency per line (18 ns).
    """

    line_read_s: float = 9e-9
    line_write_s: float = 18e-9

    def pass_time(self, num_lines: int, corrected_lines: int) -> float:
        """Time for one scrub pass: read every line, rewrite corrected ones."""
        return num_lines * self.line_read_s + corrected_lines * self.line_write_s


class ScrubEngine:
    """Walks an array each interval and drives a correction scheme."""

    def __init__(
        self,
        array: STTRAMArray,
        scheme: LineScrubber,
        interval_s: float = 0.020,
        timing: Optional[ScrubTiming] = None,
        backend: Optional[Union[str, KernelBackend]] = None,
    ) -> None:
        if interval_s <= 0:
            raise ValueError("scrub interval must be positive")
        self.array = array
        self.scheme = scheme
        self.interval_s = interval_s
        self.timing = timing if timing is not None else ScrubTiming()
        if backend is not None:
            self.set_backend(backend)

    def set_backend(self, backend: Union[str, KernelBackend]) -> None:
        """Route the scheme's bulk operations through a kernel backend.

        Delegates to the scheme's own ``set_backend`` when it has one
        (SuDoku engines, baselines); plain :class:`LineScrubber` schemes
        without bulk operations are left untouched.
        """
        setter = getattr(self.scheme, "set_backend", None)
        if setter is not None:
            setter(backend)

    def scrub_pass(self, sparse: bool = False) -> ScrubReport:
        """Run one full scrub over the array.

        With ``sparse=True`` the pass consults the array's dirty-frame
        index and only *decodes* frames whose stored word diverged from
        the last scrubbed state; every other line is a valid codeword by
        the dirty-set invariant, so it is bulk-accounted as ``clean``
        without running the correction machinery.  Outcome counters are
        bit-identical to a dense pass.  The timing model is unchanged in
        both modes -- the hardware still reads every line; only the
        simulator skips the redundant decodes -- so ``lines_scrubbed``
        and ``busy_time_s`` always reflect the full array.
        """
        report = ScrubReport()
        corrected = 0
        if sparse:
            dirty = self.array.dirty_frames()
            scrub_frames = getattr(self.scheme, "scrub_frames", None)
            if scrub_frames is not None:
                counts = Counter(scrub_frames(dirty))
            else:
                # Plain LineScrubber schemes: walk the dirty frames only.
                counts = Counter()
                for index in dirty:
                    counts[self.scheme.scrub_line(index)] += 1
            report.outcomes.update(counts)
            for label, count in counts.items():
                if is_corrected_label(label):
                    corrected += count
            # Collateral group repairs only ever touch faulty frames, all
            # of which are in the dirty set, so the remainder is exactly
            # the untouched-clean population.
            bulk_clean = self.array.num_lines - sum(counts.values())
            report.outcomes[Outcome.CLEAN.value] += bulk_clean
            account = getattr(self.scheme, "account_bulk_clean", None)
            if account is not None:
                account(bulk_clean)
        else:
            # The dense reference pass: visiting every line is the
            # point (it is what sparse mode is validated against).
            # repro-lint: disable=RPR009
            for index in range(self.array.num_lines):
                outcome = self.scheme.scrub_line(index)
                report.outcomes[outcome] += 1
                if is_corrected_label(outcome):
                    corrected += 1
        report.lines_scrubbed = self.array.num_lines
        report.busy_time_s = self.timing.pass_time(self.array.num_lines, corrected)
        return report

    def bandwidth_overhead(self) -> float:
        """Fraction of time the cache spends scrubbing (fault-free pass).

        The paper picks 20 ms so this stays at "a few percent" for a 64 MB
        cache (footnote 1).
        """
        return self.timing.pass_time(self.array.num_lines, 0) / self.interval_s
