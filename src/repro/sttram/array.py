"""A bit-level array of encoded lines that faults act on.

:class:`STTRAMArray` holds, per line, both the *stored* value (which
faults corrupt) and the *golden* value (what was last written).  The
golden copy is simulator bookkeeping, not hardware: it is what lets the
Monte-Carlo harness classify every correction attempt as success,
detectable-uncorrectable (DUE), or silent data corruption (SDC).

The array additionally maintains a *dirty-frame set*: the indices whose
stored word currently diverges from golden.  Every mutation keeps it
exact (``write`` cleans, ``inject``/``restore`` compare against golden),
so membership is O(1) and enumerating the faulty population is O(dirty)
instead of O(lines) -- the index behind the sparse scrub fast path
(:meth:`repro.sttram.scrub.ScrubEngine.scrub_pass` with ``sparse=True``)
and the campaign ``heal`` step.

Permanent (stuck-at) faults attach via :meth:`attach_permanent_faults`.
Stuck bits re-assert through every ``write``/``restore``/``inject``:
the stored value is always read through the mask, modelling cells that
physically cannot hold the written polarity.  Two consequences matter
for the scrub fast path:

* the dirty set stays defined against raw golden (``stored != golden``),
  so a line whose stuck bit conflicts with its golden content is
  *permanently dirty* and sparse scrub passes keep visiting it -- this
  is what keeps sparse bit-identical to dense under permanent faults;
* :meth:`is_clean` is *residual* cleanliness -- stored matches golden
  as read through the stuck bits -- so correction audits do not
  misclassify a re-asserted stuck bit as silent data corruption.
"""

from __future__ import annotations

import random as _stdlib_random
from typing import TYPE_CHECKING, Iterator, List, Optional, Set

import numpy as np

from repro.coding.bitvec import mask_of, popcount, random_bits
from repro.core.rng import SeedLike, resolve_rng
from repro.kernels.planes import pack_line, unpack_line, words_per_line

if TYPE_CHECKING:  # pragma: no cover - import cycle (faults imports array)
    from repro.kernels.interface import KernelBackend
    from repro.sttram.faults import PermanentFaultMap

#: Valid ``STTRAMArray(storage=...)`` modes.
STORAGE_MODES = ("list", "planes")


class _PlaneStore:
    """List-protocol facade over an ``(N, words_per_line)`` uint64 matrix.

    Lines read and write as Python ints (so every existing call site and
    the reference backend work unchanged), while the backing store stays
    a contiguous bit-plane matrix the numpy kernels can reduce over
    without repacking (see :meth:`STTRAMArray.recompute_dirty_frames`).
    """

    __slots__ = ("_planes",)

    def __init__(self, num_lines: int, line_bits: int) -> None:
        self._planes = np.zeros(
            (num_lines, words_per_line(line_bits)), dtype=np.uint64
        )

    @property
    def planes(self) -> np.ndarray:
        """The backing ``(N, words_per_line)`` uint64 matrix."""
        return self._planes

    def __getitem__(self, index: int) -> int:
        return unpack_line(self._planes[index])

    def __setitem__(self, index: int, value: int) -> None:
        self._planes[index] = pack_line(value, self._planes.shape[1] * 64)

    def __len__(self) -> int:
        return self._planes.shape[0]

    def __iter__(self) -> Iterator[int]:
        raw = self._planes.tobytes()
        nbytes = self._planes.shape[1] * 8
        for offset in range(0, len(raw), nbytes):
            yield int.from_bytes(raw[offset:offset + nbytes], "little")


class STTRAMArray:
    """Fixed-geometry array of ``num_lines`` lines of ``line_bits`` bits."""

    def __init__(
        self, num_lines: int, line_bits: int, *, storage: str = "list"
    ) -> None:
        if num_lines <= 0:
            raise ValueError("num_lines must be positive")
        if line_bits <= 0:
            raise ValueError("line_bits must be positive")
        if storage not in STORAGE_MODES:
            raise ValueError(
                f"unknown storage mode {storage!r}; expected one of {STORAGE_MODES}"
            )
        self.num_lines = num_lines
        self.line_bits = line_bits
        self.storage = storage
        self._mask = mask_of(line_bits)
        if storage == "planes":
            self._stored = _PlaneStore(num_lines, line_bits)
            self._golden = _PlaneStore(num_lines, line_bits)
        else:
            self._stored = [0] * num_lines
            self._golden = [0] * num_lines
        self._dirty: Set[int] = set()
        self._fault_map: Optional["PermanentFaultMap"] = None

    # -- permanent faults -------------------------------------------------------

    def attach_permanent_faults(self, fault_map: "PermanentFaultMap") -> None:
        """Attach a stuck-at map; stuck bits assert immediately and forever.

        Every subsequent ``write``/``restore``/``inject`` stores the
        value as filtered through the stuck bits, and current contents
        are re-asserted now (the dirty set updates accordingly).  Only
        one map may be attached over an array's lifetime.
        """
        if self._fault_map is not None:
            raise ValueError("a permanent fault map is already attached")
        if fault_map.line_bits != self.line_bits:
            raise ValueError(
                f"fault map is {fault_map.line_bits} bits wide, "
                f"array lines are {self.line_bits}"
            )
        for masks in (fault_map.stuck_at_one, fault_map.stuck_at_zero):
            for line_index in masks:
                self._check(line_index, 0)
        self._fault_map = fault_map
        touched = set(fault_map.stuck_at_one) | set(fault_map.stuck_at_zero)
        for index in touched:
            self._stored[index] = fault_map.apply(index, self._stored[index])
            if self._stored[index] != self._golden[index]:
                self._dirty.add(index)
            else:
                self._dirty.discard(index)

    @property
    def has_permanent_faults(self) -> bool:
        """True once a stuck-at map is attached."""
        return self._fault_map is not None

    @property
    def permanent_faults(self) -> Optional["PermanentFaultMap"]:
        """The attached stuck-at map, if any."""
        return self._fault_map

    def _through_faults(self, index: int, value: int) -> int:
        """Value as physically storable at this line (stuck bits asserted)."""
        if self._fault_map is None:
            return value
        return self._fault_map.apply(index, value)

    # -- access ---------------------------------------------------------------

    def write(self, index: int, value: int) -> int:
        """Write a line: updates both stored and golden; returns old stored.

        The returned previous stored value is what a hardware
        read-modify-write would have seen, which is what the Parity Line
        Table update needs.  Golden records the *intended* value; stuck
        bits assert in the stored copy only, so a conflicting write
        leaves the line dirty (the residual fault a scrub will keep
        re-encountering).
        """
        self._check(index, value)
        previous = self._stored[index]
        self._stored[index] = self._through_faults(index, value)
        self._golden[index] = value
        if self._stored[index] != value:
            self._dirty.add(index)
        else:
            self._dirty.discard(index)
        return previous

    def read(self, index: int) -> int:
        """Read the stored (possibly corrupted) value."""
        self._check(index, 0)
        return self._stored[index]

    def golden(self, index: int) -> int:
        """The last value actually written (fault-free reference)."""
        self._check(index, 0)
        return self._golden[index]

    # -- fault manipulation -----------------------------------------------------

    def inject(self, index: int, error_vector: int) -> None:
        """XOR an error mask into the stored value (golden untouched).

        Flips landing on stuck bits are absorbed: a stuck cell cannot
        transition, so the post-injection value is re-read through the
        stuck mask.
        """
        self._check(index, error_vector)
        self._stored[index] = self._through_faults(
            index, self._stored[index] ^ error_vector
        )
        if self._stored[index] != self._golden[index]:
            self._dirty.add(index)
        else:
            self._dirty.discard(index)

    def restore(self, index: int, value: int) -> None:
        """Write back a corrected value without touching golden.

        This models the scrub engine writing its repaired line into the
        array; whether the repair was *right* is judged against golden.
        Stuck bits re-assert through the write-back -- the defining
        permanent-fault behaviour: a correct repair of a stuck-conflicting
        line still leaves the stuck bits wrong in storage.
        """
        self._check(index, value)
        self._stored[index] = self._through_faults(index, value)
        if self._stored[index] != self._golden[index]:
            self._dirty.add(index)
        else:
            self._dirty.discard(index)

    def error_vector(self, index: int) -> int:
        """Current stored-vs-golden difference mask."""
        self._check(index, 0)
        return self._stored[index] ^ self._golden[index]

    def residual_vector(self, index: int) -> int:
        """Stored-vs-golden difference beyond what stuck bits force.

        Zero means the line is as correct as the hardware permits: every
        remaining divergence from golden sits on a stuck bit asserting
        its polarity.
        """
        self._check(index, 0)
        return self._stored[index] ^ self._through_faults(
            index, self._golden[index]
        )

    def is_clean(self, index: int) -> bool:
        """True when stored matches golden up to stuck-bit residue.

        Without permanent faults this is exact stored-equals-golden.
        With them, a line whose only divergence is re-asserted stuck
        bits counts as clean -- the correction audit must not label a
        physically unavoidable residue as silent data corruption.  The
        *dirty set* intentionally keeps the raw definition, so such
        lines remain visible to sparse scrub passes.
        """
        return self.residual_vector(index) == 0

    def is_dirty(self, index: int) -> bool:
        """O(1) membership test against the dirty-frame set."""
        return index in self._dirty

    def dirty_frames(self) -> List[int]:
        """Sorted indices whose stored word diverges from golden.

        This is the fault index the sparse scrub fast path walks; sorted
        so sparse and dense passes visit faulty frames in the same order
        (group repairs consume parity state, so visit order matters for
        bit-identical outcome accounting).
        """
        return sorted(self._dirty)

    def recompute_dirty_frames(
        self, backend: Optional["KernelBackend"] = None
    ) -> List[int]:
        """Rebuild the dirty set from a full stored-vs-golden sweep.

        The incremental set is exact by construction; this is the
        audit / bulk path (checkpoint restore, equivalence tests) routed
        through the kernel backend's dirty-population reduction: a
        whole-matrix compare in plane mode, the plain zip walk in list
        mode.  Returns the sorted dirty indices.
        """
        from repro.kernels import resolve_backend

        kernels = resolve_backend(backend)
        if isinstance(self._stored, _PlaneStore):
            dirty = kernels.dirty_from_planes(
                self._stored.planes, self._golden.planes
            )
        else:
            dirty = kernels.dirty_lines(self._stored, self._golden)
        self._dirty = set(dirty)
        return sorted(dirty)

    @property
    def dirty_count(self) -> int:
        """Number of currently dirty frames (O(1))."""
        return len(self._dirty)

    def faulty_lines(self) -> List[int]:
        """Indices of lines whose stored value differs from golden."""
        return self.dirty_frames()

    def total_faulty_bits(self) -> int:
        """Total number of corrupted bits across the array (O(dirty))."""
        return sum(
            popcount(self._stored[index] ^ self._golden[index])
            for index in self._dirty
        )

    # -- bulk helpers -------------------------------------------------------------

    def fill_word(self, value: int) -> None:
        """Write one value to every line: the bulk formatting primitive.

        Semantically identical to ``write(index, value)`` over every
        index; cache ``_format`` paths route here so the per-line walk
        lives in one sanctioned place next to the storage it owns.  In
        plane mode with no stuck-at map the fill is a single broadcast
        into the bit-plane matrix.
        """
        self._check(0, value)
        if self._fault_map is None and isinstance(self._stored, _PlaneStore):
            packed = pack_line(value, self._stored.planes.shape[1] * 64)
            self._stored.planes[:] = packed
            self._golden.planes[:] = packed
            self._dirty.clear()
            return
        # The sanctioned scalar fill: stuck bits must re-assert per line.
        # repro-lint: disable=RPR009
        for index in range(self.num_lines):
            self.write(index, value)

    def fill_random(
        self,
        rng: Optional[np.random.Generator] = None,
        *,
        seed: Optional[SeedLike] = None,
    ) -> None:
        """Write uniformly random content to every line."""
        generator = resolve_rng(rng, seed, owner="STTRAMArray.fill_random")
        # One shim reseeded per line: ``Random(seed)`` and ``seed(seed)``
        # initialise identical states, so the content stream is
        # bit-identical to constructing a fresh shim per line (pinned by
        # the seed-golden tests) without num_lines object constructions.
        shim = _IntRandom(0)
        # Content generation is the bulk path itself: the per-line
        # reseed stream is pinned bit-identical by the seed-golden
        # suite, so it cannot batch without changing the stream.
        # repro-lint: disable=RPR009
        for index in range(self.num_lines):
            bits = generator.bit_generator.random_raw()  # cheap 64-bit seed
            shim.reseed(int(bits))
            value = random_bits(self.line_bits, shim)
            self.write(index, value)

    def __len__(self) -> int:
        return self.num_lines

    def __iter__(self) -> Iterator[int]:
        return iter(self._stored)

    def _check(self, index: int, value: int) -> None:
        if not 0 <= index < self.num_lines:
            raise IndexError(f"line index {index} out of range")
        if value < 0 or value > self._mask:
            raise ValueError(f"value does not fit in {self.line_bits} bits")


class _IntRandom:
    """Minimal ``random.Random``-compatible shim seeded from numpy.

    Only implements ``getrandbits`` (all :func:`random_bits` needs); keeps
    :meth:`STTRAMArray.fill_random` reproducible from a single numpy
    generator without importing the stdlib RNG state machinery.
    """

    def __init__(self, seed: int) -> None:
        self._rng = _stdlib_random.Random(seed)

    def reseed(self, seed: int) -> None:
        """Reset to the state ``_IntRandom(seed)`` would construct."""
        self._rng.seed(seed)

    def getrandbits(self, width: int) -> int:
        return self._rng.getrandbits(width)
