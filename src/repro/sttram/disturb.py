"""Disturb faults (section VI, Table V).

PCM and Flash -- and, via row hammer, DRAM -- suffer *disturb* errors:
activity on one line flips bits in physically adjacent lines.  Unlike
the iid thermal flips of the main study, disturb faults are (a)
access-correlated, so they concentrate around hot lines, and (b) often
*bursty*, hitting a contiguous run of cells.

:class:`DisturbChannel` wraps any engine: each read or write disturbs
each physical neighbour with probability ``disturb_probability``,
flipping either a single bit or a short burst.  Because neighbours in
the physical frame order share a Hash-1 RAID-Group, disturb clustering
is the *worst case* for a single-hash design -- and exactly the pattern
the skewed second hash decorrelates, which `bench_disturb.py`
demonstrates.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

import numpy as np

from repro.core.rng import SeedLike, resolve_rng
from repro.sttram.faults import burst_error_vector


class DisturbChannel:
    """Engine wrapper injecting neighbour-disturb faults on accesses.

    :param engine: the wrapped protection engine.
    :param disturb_probability: per-access, per-neighbour flip probability.
    :param neighbours: how many frames on each side are exposed.
    :param burst_length: bits flipped per disturb event (1 = single bit).
    """

    def __init__(
        self,
        engine,
        disturb_probability: float,
        neighbours: int = 1,
        burst_length: int = 1,
        rng: Optional[np.random.Generator] = None,
        *,
        seed: Optional[SeedLike] = None,
    ) -> None:
        if not 0.0 <= disturb_probability <= 1.0:
            raise ValueError("disturb_probability must be a probability")
        if neighbours < 1:
            raise ValueError("neighbours must be at least 1")
        if burst_length < 1:
            raise ValueError("burst_length must be at least 1")
        self.engine = engine
        self.disturb_probability = disturb_probability
        self.neighbours = neighbours
        self.burst_length = burst_length
        self._rng = resolve_rng(rng, seed, owner="DisturbChannel")
        self.disturb_events = 0

    # -- the disturb mechanism ------------------------------------------------------

    def _disturb_neighbours(self, frame: int) -> None:
        array = self.engine.array
        for offset in range(1, self.neighbours + 1):
            for neighbour in (frame - offset, frame + offset):
                if not 0 <= neighbour < array.num_lines:
                    continue
                if self._rng.random() >= self.disturb_probability:
                    continue
                start = int(
                    self._rng.integers(0, array.line_bits - self.burst_length + 1)
                )
                array.inject(
                    neighbour,
                    burst_error_vector(array.line_bits, start, self.burst_length),
                )
                self.disturb_events += 1

    # -- wrapped access paths ----------------------------------------------------------

    def write_data(self, frame: int, data: int) -> None:
        """Write through, then disturb the physical neighbours."""
        self.engine.write_data(frame, data)
        self._disturb_neighbours(frame)

    def read_data(self, frame: int):
        """Read through (with correction), then disturb the neighbours."""
        result = self.engine.read_data(frame)
        self._disturb_neighbours(frame)
        return result

    # -- forwarded campaign interface ----------------------------------------------------

    @property
    def array(self):
        """The protected array."""
        return self.engine.array

    @property
    def data_bits(self) -> int:
        """Payload width."""
        return self.engine.data_bits

    def scrub_frames(self, frames: Iterable[int]) -> Dict[str, int]:
        """Forwarded to the wrapped engine."""
        return self.engine.scrub_frames(frames)

    def scrub_all(self) -> Dict[str, int]:
        """Forwarded to the wrapped engine."""
        return self.engine.scrub_all()

    @property
    def stats(self):
        """The wrapped engine's counters."""
        return self.engine.stats
