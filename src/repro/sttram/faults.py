"""Fault injection.

Transient thermal flips are the paper's primary fault model: each bit of
the array independently flips with probability BER within a scrub
interval, and -- unlike permanent faults -- *every* bit is at risk every
interval.  Section VI additionally argues SuDoku handles permanent
(stuck-at) and disturb faults; injectors for those live here too so the
section-VI studies can exercise the same correction paths.

The injector exposes two granularities:

* :meth:`TransientFaultInjector.error_vector` -- an error mask for one
  line (used by line-level unit tests and the functional engines), and
* :meth:`TransientFaultInjector.inject_interval` -- a whole-array
  injection that samples the total fault count binomially and scatters
  the faults uniformly (the Monte-Carlo fast path: O(faults), not O(bits)).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple, Union

import numpy as np

from repro.coding.bitvec import bit_positions, flip_bits
from repro.coding.interleave import BitInterleaver
from repro.core.rng import SeedLike, resolve_rng
from repro.kernels import KernelBackend, resolve_backend
from repro.sttram.array import STTRAMArray


class FaultKind(enum.Enum):
    """Taxonomy of injected faults."""

    TRANSIENT = "transient"
    STUCK_AT_ZERO = "stuck-at-0"
    STUCK_AT_ONE = "stuck-at-1"
    DISTURB = "disturb"
    #: A fault in the correction *metadata* (a PLT parity entry or the
    #: group-mapping logic) rather than in the protected data array; the
    #: chaos harness (:mod:`repro.resilience.chaos`) injects these.
    METADATA = "metadata"


@dataclass(frozen=True)
class FaultEvent:
    """One injected fault: a specific bit of a specific line flipped/stuck."""

    line_index: int
    bit_position: int
    kind: FaultKind = FaultKind.TRANSIENT


def sample_fault_count(
    num_bits: int,
    ber: float,
    rng: Optional[np.random.Generator] = None,
    *,
    seed: Optional[SeedLike] = None,
) -> int:
    """Binomial draw of how many bits flip in ``num_bits`` at rate ``ber``."""
    if num_bits < 0:
        raise ValueError("num_bits must be non-negative")
    if not 0.0 <= ber <= 1.0:
        raise ValueError("ber must be a probability")
    generator = resolve_rng(rng, seed, owner="sample_fault_count")
    return int(generator.binomial(num_bits, ber))


class TransientFaultInjector:
    """Injects iid transient bit flips at a configured bit error rate.

    :param line_bits: width of each protected line in bits (coded width --
        the paper's thermal flips strike ECC and CRC bits just as readily
        as data bits).
    :param ber: per-bit flip probability per scrub interval.
    :param rng: explicit generator (campaign paths thread this).
    :param seed: derive a generator from this seed instead; omitting
        both warns once (:class:`repro.core.rng.UnseededRNGWarning`).
    """

    def __init__(
        self,
        line_bits: int,
        ber: float,
        rng: Optional[np.random.Generator] = None,
        *,
        seed: Optional[SeedLike] = None,
        backend: Optional[Union[str, KernelBackend]] = None,
    ) -> None:
        if line_bits <= 0:
            raise ValueError("line_bits must be positive")
        if not 0.0 <= ber <= 1.0:
            raise ValueError("ber must be a probability")
        self.line_bits = line_bits
        self.ber = ber
        self.backend = resolve_backend(backend)
        self._rng = resolve_rng(rng, seed, owner="TransientFaultInjector")

    def error_vector(self) -> int:
        """Sample an error mask for a single line (may be zero)."""
        count = int(self._rng.binomial(self.line_bits, self.ber))
        if count == 0:
            return 0
        positions = self._rng.choice(self.line_bits, size=count, replace=False)
        return flip_bits(0, (int(p) for p in positions), width=self.line_bits)

    def error_vector_at(self, positions: Iterable[int]) -> int:
        """Validated error mask for explicit bit positions.

        Targeted studies and tests place faults at chosen positions; a
        position at or beyond ``line_bits`` raises instead of silently
        widening the line (which would corrupt state the golden-copy
        heal invariant cannot restore).
        """
        return flip_bits(0, positions, width=self.line_bits)

    def error_vectors(self, num_lines: int) -> Dict[int, int]:
        """Sample error masks for ``num_lines`` lines; zero masks omitted.

        Equivalent to calling :meth:`error_vector` per line but samples the
        *total* fault count once and scatters, which is O(faults) instead
        of O(lines) -- the difference between hours and seconds for a
        million-line cache at BER ~ 5e-6.
        """
        if num_lines < 0:
            raise ValueError("num_lines must be non-negative")
        total_bits = num_lines * self.line_bits
        count = int(self._rng.binomial(total_bits, self.ber))
        if count == 0:
            return {}
        # Sample distinct flat bit indices, then split into (line, bit).
        flat = self._sample_distinct(total_bits, count)
        return self.backend.scatter_fault_vectors(flat, self.line_bits)

    def inject_frames(self, array: "STTRAMArray") -> List[int]:
        """Inject one interval's faults; return the sorted frames hit.

        The campaign fast path: one binomial draw plus an O(faults)
        scatter, with the array's dirty-frame set maintained by
        ``array.inject`` as a side effect.  The returned list equals the
        dirty set delta for a clean array, which is exactly the visit
        list a sparse scrub pass needs.  Consumes the same RNG sequence
        as :meth:`error_vectors`, so campaigns are bit-identical whether
        they use this helper or the manual inject loop.
        """
        vectors = self.error_vectors(array.num_lines)
        for line_index, vector in vectors.items():
            array.inject(line_index, vector)
        return sorted(vectors)

    def inject_interval(self, array: "STTRAMArray") -> List[FaultEvent]:
        """Inject one scrub interval's worth of faults into an array."""
        vectors = self.error_vectors(array.num_lines)
        events: List[FaultEvent] = []
        for line_index, vector in vectors.items():
            array.inject(line_index, vector)
            events.extend(
                FaultEvent(line_index, position)
                for position in bit_positions(vector)
            )
        return events

    def _sample_distinct(self, population: int, count: int) -> np.ndarray:
        """Distinct uniform indices without materialising the population."""
        return sample_distinct(self._rng, population, count)


def sample_distinct(
    rng: np.random.Generator, population: int, count: int
) -> np.ndarray:
    """Distinct uniform indices without materialising the population.

    Rejection sampling: at realistic fault densities count << population,
    so one round almost always suffices.  Shared by the transient
    injector, the burst injector, and :meth:`PermanentFaultMap.random`
    (whose with-replacement draws used to silently OR duplicate indices
    into the same bit, undercounting the requested density).
    """
    if count > population:
        raise ValueError("cannot sample more faults than bits")
    chosen: set = set()
    while len(chosen) < count:
        draw = rng.integers(0, population, size=count - len(chosen))
        chosen.update(int(v) for v in draw)
    return np.fromiter(chosen, dtype=np.int64, count=count)


@dataclass
class PermanentFaultMap:
    """Stuck-at fault map for the section-VI permanent-fault studies.

    ``stuck_at_one[line]`` / ``stuck_at_zero[line]`` are bit masks; a read
    of that line always sees the stuck bits forced to their stuck value,
    regardless of what was written.
    """

    line_bits: int
    stuck_at_one: Dict[int, int] = field(default_factory=dict)
    stuck_at_zero: Dict[int, int] = field(default_factory=dict)

    def add(self, line_index: int, bit_position: int, kind: FaultKind) -> None:
        """Register a permanent fault.

        A bit cannot be stuck at both polarities; registering the
        opposite polarity on an already-stuck bit raises instead of
        letting :meth:`apply`'s masking order silently pick a winner.
        """
        if not 0 <= bit_position < self.line_bits:
            raise ValueError("bit position out of range")
        mask = 1 << bit_position
        if kind is FaultKind.STUCK_AT_ONE:
            if self.stuck_at_zero.get(line_index, 0) & mask:
                raise ValueError(
                    f"line {line_index} bit {bit_position} is already "
                    "stuck-at-0; a bit cannot be stuck at both polarities"
                )
            self.stuck_at_one[line_index] = self.stuck_at_one.get(line_index, 0) | mask
        elif kind is FaultKind.STUCK_AT_ZERO:
            if self.stuck_at_one.get(line_index, 0) & mask:
                raise ValueError(
                    f"line {line_index} bit {bit_position} is already "
                    "stuck-at-1; a bit cannot be stuck at both polarities"
                )
            self.stuck_at_zero[line_index] = self.stuck_at_zero.get(line_index, 0) | mask
        else:
            raise ValueError(f"not a permanent fault kind: {kind}")

    def apply(self, line_index: int, value: int) -> int:
        """Value as read through the stuck bits."""
        value |= self.stuck_at_one.get(line_index, 0)
        value &= ~self.stuck_at_zero.get(line_index, 0)
        return value

    def error_vector(self, line_index: int, written: int) -> int:
        """Effective error mask for a given written value."""
        return written ^ self.apply(line_index, written)

    @classmethod
    def random(
        cls,
        num_lines: int,
        line_bits: int,
        fault_ppm: float,
        rng: Optional[np.random.Generator] = None,
        *,
        seed: Optional[SeedLike] = None,
    ) -> "PermanentFaultMap":
        """Uniformly random stuck-at faults at a parts-per-million density.

        Samples *distinct* flat bit indices, so the realized stuck-at
        count equals the binomial draw exactly (with-replacement
        sampling used to OR duplicates into the same bit, undercounting
        the requested ppm), and no bit can receive both polarities.
        """
        generator = resolve_rng(rng, seed, owner="PermanentFaultMap.random")
        fault_map = cls(line_bits)
        total_bits = num_lines * line_bits
        count = int(generator.binomial(total_bits, fault_ppm * 1e-6))
        if count == 0:
            return fault_map
        flats = sorted(int(v) for v in sample_distinct(generator, total_bits, count))
        polarities = generator.integers(0, 2, size=count)
        for flat, polarity in zip(flats, polarities):
            line_index, bit_position = divmod(flat, line_bits)
            kind = (
                FaultKind.STUCK_AT_ONE if polarity else FaultKind.STUCK_AT_ZERO
            )
            fault_map.add(line_index, bit_position, kind)
        return fault_map


def burst_error_vector(
    line_bits: int,
    start: int,
    length: int,
) -> int:
    """Contiguous burst of flipped bits (disturb-style fault pattern)."""
    if not 0 <= start < line_bits:
        raise ValueError("burst start out of range")
    if length <= 0 or start + length > line_bits:
        raise ValueError("burst does not fit in the line")
    return ((1 << length) - 1) << start


def burst_line_masks(
    line_bits: int,
    start: int,
    length: int,
    *,
    interleave: int = 1,
) -> List[Tuple[int, int]]:
    """(line offset, error mask) pairs induced by one physical burst.

    With ``interleave == 1`` the burst lands wholly in one line.  With
    ``interleave == D`` the physical row holds ``D`` logical lines
    bit-interleaved (see :class:`repro.coding.interleave.BitInterleaver`),
    so a contiguous physical burst of length ``k`` spreads across
    ``min(k, D)`` logical lines at at most ``ceil(k / D)`` bits each --
    the geometric fact that makes interleaving load-bearing under MBUs.

    Shared by the numpy-generator :class:`BurstFaultInjector` and the
    stdlib-RNG scenario samplers, so both fault paths place identical
    bursts for identical (start, length) draws.
    """
    if interleave <= 0:
        raise ValueError("interleave must be positive")
    if interleave == 1:
        return [(0, burst_error_vector(line_bits, start, length))]
    interleaver = BitInterleaver(line_bits, interleave)
    return interleaver.burst_to_line_errors(start, length)


class BurstFaultInjector:
    """Injects adjacent multi-bit bursts (MBU events) at a per-line rate.

    Each interval, the number of burst *events* is a binomial draw over
    ``num_lines`` at ``rate``; each event picks a distinct base line, a
    burst length from ``length_pmf``, and an aligned start position
    within ``span``:

    :param line_bits: width of each logical line in bits.
    :param rate: per-line probability that a burst event originates at
        that line per interval.
    :param length_pmf: mapping of burst length (bits) to probability;
        normalized internally, every length must fit in ``span``.
    :param span: window of physical positions ``[0, span)`` bursts may
        occupy; defaults to the full row (``line_bits * interleave``).
    :param alignment: burst starts are multiples of this (models column
        granularity in the physical row); default 1 (unaligned).
    :param multiplicity: number of consecutive rows struck by the same
        burst pattern per event (vertical MBU extent); default 1.
    :param interleave: logical lines per physical row.  1 means the
        burst lands contiguously in one line (worst case for per-line
        ECC-1); ``D > 1`` spreads it across ``D`` lines via the block
        bit-interleaver -- the burst-vs-interleave comparison knob.
    :param rng: explicit generator (campaign paths thread this, seeded
        off the campaign SeedSequence tree).
    :param seed: derive a generator from this seed instead.
    """

    def __init__(
        self,
        line_bits: int,
        rate: float,
        length_pmf: Dict[int, float],
        *,
        span: Optional[int] = None,
        alignment: int = 1,
        multiplicity: int = 1,
        interleave: int = 1,
        rng: Optional[np.random.Generator] = None,
        seed: Optional[SeedLike] = None,
        backend: Optional[Union[str, KernelBackend]] = None,
    ) -> None:
        if line_bits <= 0:
            raise ValueError("line_bits must be positive")
        if not 0.0 <= rate <= 1.0:
            raise ValueError("rate must be a probability")
        if alignment <= 0:
            raise ValueError("alignment must be positive")
        if multiplicity <= 0:
            raise ValueError("multiplicity must be positive")
        if interleave <= 0:
            raise ValueError("interleave must be positive")
        row_bits = line_bits * interleave
        if span is None:
            span = row_bits
        if not 0 < span <= row_bits:
            raise ValueError(f"span must be in (0, {row_bits}], got {span}")
        if not length_pmf:
            raise ValueError("length_pmf must not be empty")
        total = 0.0
        for length, probability in length_pmf.items():
            if not isinstance(length, int) or length <= 0:
                raise ValueError(f"burst length must be a positive int: {length}")
            if length > span:
                raise ValueError(
                    f"burst length {length} does not fit in span {span}"
                )
            if probability < 0:
                raise ValueError("length_pmf probabilities must be >= 0")
            total += probability
        if total <= 0:
            raise ValueError("length_pmf probabilities must sum to > 0")
        self.line_bits = line_bits
        self.rate = rate
        self.span = span
        self.alignment = alignment
        self.multiplicity = multiplicity
        self.interleave = interleave
        self._lengths = sorted(length_pmf)
        weights = [length_pmf[length] / total for length in self._lengths]
        self._cumulative = list(np.cumsum(weights))
        self._cumulative[-1] = 1.0  # guard against float drift
        self.backend = resolve_backend(backend)
        self._rng = resolve_rng(rng, seed, owner="BurstFaultInjector")

    def _draw_length(self) -> int:
        """Inverse-CDF draw from the burst-length PMF."""
        u = float(self._rng.random())
        for length, bound in zip(self._lengths, self._cumulative):
            if u <= bound:
                return length
        return self._lengths[-1]

    def _draw_start(self, length: int) -> int:
        """Aligned uniform start so the burst fits inside the span."""
        slots = (self.span - length) // self.alignment + 1
        return int(self._rng.integers(0, slots)) * self.alignment

    def error_vectors(self, num_lines: int) -> Dict[int, int]:
        """Sample one interval's burst events as per-line error masks.

        One binomial draw for the event count, distinct base lines in
        sorted order, then per-event (length, start) draws -- so the
        consumed RNG stream is a pure function of (geometry, num_lines)
        and the generator state, which is what lets sharded campaigns
        replay the same events from the same SeedSequence children.
        Masks from overlapping events OR together; burst cells past the
        last line are clipped (array-edge events).
        """
        if num_lines < 0:
            raise ValueError("num_lines must be non-negative")
        count = int(self._rng.binomial(num_lines, self.rate))
        if count == 0:
            return {}
        bases = sorted(int(v) for v in sample_distinct(self._rng, num_lines, count))
        events: List[Tuple[int, int]] = []
        for base in bases:
            length = self._draw_length()
            start = self._draw_start(length)
            masks = burst_line_masks(
                self.line_bits, start, length, interleave=self.interleave
            )
            for row in range(self.multiplicity):
                row_base = base + row * self.interleave
                for offset, mask in masks:
                    events.append((row_base + offset, mask))
        return self.backend.fold_line_masks(events, num_lines)

    def inject_frames(self, array: "STTRAMArray") -> List[int]:
        """Inject one interval's bursts; return the sorted frames hit."""
        vectors = self.error_vectors(array.num_lines)
        for line_index, vector in vectors.items():
            array.inject(line_index, vector)
        return sorted(vectors)
