"""Write errors (section VIII-B).

A low thermal-stability factor also raises STTRAM's *write* error rate
(WER): a write may fail to switch some cells.  The paper argues SuDoku
needs no special handling -- a write error is indistinguishable from a
retention flip that happened immediately after the write, so the same
scrub + correction machinery absorbs it, and with WER comparable to the
retention BER "SuDoku will provide similar reliability".

:class:`WriteErrorChannel` wraps any engine (SuDoku or baseline): every
``write_data`` goes through, then each just-written bit flips
independently with probability ``wer``.  The wrapper forwards the rest
of the campaign interface so Monte-Carlo harnesses drive it unchanged.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

import numpy as np

from repro.coding.bitvec import flip_bits
from repro.core.rng import SeedLike, resolve_rng


class WriteErrorChannel:
    """Engine wrapper injecting per-bit write errors on every write."""

    def __init__(
        self,
        engine,
        wer: float,
        rng: Optional[np.random.Generator] = None,
        *,
        seed: Optional[SeedLike] = None,
    ) -> None:
        if not 0.0 <= wer <= 1.0:
            raise ValueError("wer must be a probability")
        self.engine = engine
        self.wer = wer
        self._rng = resolve_rng(rng, seed, owner="WriteErrorChannel")
        self.write_errors_injected = 0

    # -- write path ---------------------------------------------------------------

    def write_data(self, frame: int, data: int) -> None:
        """Write through the engine, then corrupt the stored word."""
        self.engine.write_data(frame, data)
        array = self.engine.array
        count = int(self._rng.binomial(array.line_bits, self.wer))
        if count:
            positions = self._rng.choice(array.line_bits, size=count, replace=False)
            array.inject(
                frame,
                flip_bits(
                    0, (int(p) for p in positions), width=array.line_bits
                ),
            )
            self.write_errors_injected += count

    # -- forwarded campaign interface --------------------------------------------------

    @property
    def array(self):
        """The protected array (campaign harness access)."""
        return self.engine.array

    @property
    def data_bits(self) -> int:
        """Payload width (campaign harness access)."""
        return self.engine.data_bits

    def scrub_frames(self, frames: Iterable[int]) -> Dict[str, int]:
        """Forwarded to the wrapped engine."""
        return self.engine.scrub_frames(frames)

    def scrub_all(self) -> Dict[str, int]:
        """Forwarded to the wrapped engine."""
        return self.engine.scrub_all()

    def read_data(self, frame: int):
        """Forwarded to the wrapped engine."""
        return self.engine.read_data(frame)

    @property
    def stats(self):
        """The wrapped engine's counters."""
        return self.engine.stats
