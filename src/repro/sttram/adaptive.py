"""Adaptive scrub-rate control (the Awasthi et al. [72] direction).

The paper treats efficient scrub scheduling as orthogonal work; this
module implements the natural controller on top of the reproduction's
models.  The scrub interval is the knob trading bandwidth against
reliability (Table VIII): halving it roughly halves the BER per
interval and improves SuDoku-Z's FIT by ~2^5 (the failure modes are
~quintic in BER), at double the scrub read traffic.

:class:`AdaptiveScrubController` holds a FIT target and adjusts the
interval from *observed correction activity*: the per-interval count of
multi-bit (2+) lines is a direct, high-rate estimator of the underlying
BER (expected count = N * B>=(n, 2, p)), far more observable than
failures themselves.  Each adjustment step inverts that estimate
through the analytical model and picks the longest interval (cheapest
bandwidth) still meeting the target, within configured bounds.

This gives a deployment story the static design lacks: if the device
degrades (lower effective Delta -- aging, temperature), the controller
tightens the interval before reliability is compromised, and relaxes it
again for healthy devices.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional

from repro.reliability.binomial import binomial_tail
from repro.reliability.sudokumodel import SuDokuReliabilityModel


def ber_from_multi_rate(
    multi_lines_per_interval: float,
    num_lines: int,
    line_bits: int,
    ecc_t: int = 1,
) -> float:
    """Invert the expected multi-bit-line count back to a per-bit BER.

    Solves ``num_lines * B>=(line_bits, t+1, p) = observed`` for ``p``
    by bisection; the left side is strictly increasing in ``p``.
    """
    if multi_lines_per_interval <= 0:
        return 0.0
    target = multi_lines_per_interval / num_lines
    if target >= 1.0:
        return 1.0
    low, high = 0.0, 1.0
    for _ in range(80):
        mid = (low + high) / 2.0
        if binomial_tail(line_bits, ecc_t + 1, mid) < target:
            low = mid
        else:
            high = mid
    return (low + high) / 2.0


@dataclass
class ScrubDecision:
    """One controller step."""

    observed_multi_lines: float
    estimated_ber: float
    estimated_ber_per_second: float
    chosen_interval_s: float
    predicted_fit: float


@dataclass
class AdaptiveScrubController:
    """Chooses the cheapest scrub interval meeting a FIT target.

    :param target_fit: reliability target (1.0 default).
    :param num_lines: protected lines.
    :param line_bits: stored bits per line.
    :param group_size: RAID-Group size.
    :param min_interval_s / max_interval_s: actuation bounds.
    :param ewma: smoothing factor on the observed multi-line rate.
    """

    target_fit: float = 1.0
    num_lines: int = 1 << 20
    line_bits: int = 553
    group_size: int = 512
    ecc_t: int = 1
    min_interval_s: float = 0.005
    max_interval_s: float = 0.160
    ewma: float = 0.3
    interval_s: float = 0.020
    _smoothed_rate: Optional[float] = None
    history: List[ScrubDecision] = field(default_factory=list)

    def observe(self, multi_lines_this_interval: float) -> ScrubDecision:
        """Feed one interval's multi-bit-line count; returns the decision.

        The observation is normalised by the *current* interval into a
        per-second fault intensity before re-deriving the per-interval
        BER of each candidate interval, so the controller is stable
        under its own actuation.
        """
        if multi_lines_this_interval < 0:
            raise ValueError("observation must be non-negative")
        if self._smoothed_rate is None:
            self._smoothed_rate = float(multi_lines_this_interval)
        else:
            self._smoothed_rate = (
                self.ewma * multi_lines_this_interval
                + (1 - self.ewma) * self._smoothed_rate
            )
        ber_now = ber_from_multi_rate(
            max(self._smoothed_rate, 1e-6), self.num_lines, self.line_bits,
            self.ecc_t,
        )
        # Memoryless flips: per-interval BER ~ rate * interval, so the
        # per-second hazard is recoverable from the current interval.
        hazard_per_s = -math.log1p(-min(ber_now, 1 - 1e-12)) / self.interval_s

        chosen = self.min_interval_s
        predicted = float("inf")
        candidate = self.max_interval_s
        while candidate >= self.min_interval_s - 1e-12:
            ber_candidate = -math.expm1(-hazard_per_s * candidate)
            model = SuDokuReliabilityModel(
                ber=ber_candidate,
                line_bits=self.line_bits,
                group_size=self.group_size,
                num_lines=self.num_lines,
                interval_s=candidate,
                ecc_t=self.ecc_t,
            )
            fit = model.fit_z()
            if fit <= self.target_fit:
                chosen, predicted = candidate, fit
                break
            candidate /= 2.0
        else:
            # Even the tightest interval misses: actuate the floor.
            model = SuDokuReliabilityModel(
                ber=-math.expm1(-hazard_per_s * self.min_interval_s),
                line_bits=self.line_bits,
                group_size=self.group_size,
                num_lines=self.num_lines,
                interval_s=self.min_interval_s,
                ecc_t=self.ecc_t,
            )
            chosen, predicted = self.min_interval_s, model.fit_z()

        self.interval_s = chosen
        decision = ScrubDecision(
            observed_multi_lines=multi_lines_this_interval,
            estimated_ber=ber_now,
            estimated_ber_per_second=hazard_per_s,
            chosen_interval_s=chosen,
            predicted_fit=predicted,
        )
        self.history.append(decision)
        return decision

    def bandwidth_fraction(self, read_s: float = 9e-9) -> float:
        """Raw scrub bandwidth at the current interval."""
        return self.num_lines * read_s / self.interval_s
