"""STTRAM device physics, process variation, and fault injection.

This subpackage is the "hardware" substrate of the reproduction: it turns
the paper's thermal-stability model (Eq. 1) into per-bit flip
probabilities, accounts for process variation in the thermal stability
factor, and injects faults into bit-level line arrays.

* :mod:`repro.sttram.device` -- Eq. (1): flip rate and probability of a
  single cell as a function of thermal stability and time.
* :mod:`repro.sttram.variation` -- Gaussian process variation in Delta and
  the *effective* (variation-averaged) bit error rate (Table I).
* :mod:`repro.sttram.faults` -- fault injectors: transient thermal flips,
  permanent stuck-at faults, and burst patterns for section VI.
* :mod:`repro.sttram.writeerror` -- per-write WER channel (section VIII-B).
* :mod:`repro.sttram.disturb` -- neighbour-disturb channel (section VI).
* :mod:`repro.sttram.weakcells` -- static weak-cell populations
  (spatially heterogeneous BER from frozen process variation).
* :mod:`repro.sttram.adaptive` -- adaptive scrub-rate controller
  (import directly; it layers above the reliability models).
* :mod:`repro.sttram.array` -- an array of encoded lines that faults act on.
* :mod:`repro.sttram.scrub` -- the periodic scrub engine.
"""

from repro.sttram.device import (
    THERMAL_ATTEMPT_FREQUENCY_HZ,
    STTRAMCell,
    flip_probability,
    flip_rate,
    retention_mttf_seconds,
)
from repro.sttram.variation import (
    DeltaDistribution,
    effective_ber,
    mean_cell_mttf_seconds,
)
from repro.sttram.faults import (
    FaultEvent,
    FaultKind,
    PermanentFaultMap,
    TransientFaultInjector,
    sample_fault_count,
)
from repro.sttram.array import STTRAMArray
from repro.sttram.scrub import ScrubEngine, ScrubReport
from repro.sttram.writeerror import WriteErrorChannel
from repro.sttram.disturb import DisturbChannel
from repro.sttram.weakcells import HeterogeneousFaultInjector, WeakCellMap

# repro.sttram.adaptive is NOT re-exported here: it closes the loop
# through the reliability models (a layer above this package), so
# importing it at package level would be circular.  Import it directly:
# ``from repro.sttram.adaptive import AdaptiveScrubController``.

__all__ = [
    "THERMAL_ATTEMPT_FREQUENCY_HZ",
    "STTRAMCell",
    "flip_probability",
    "flip_rate",
    "retention_mttf_seconds",
    "DeltaDistribution",
    "effective_ber",
    "mean_cell_mttf_seconds",
    "FaultEvent",
    "FaultKind",
    "PermanentFaultMap",
    "TransientFaultInjector",
    "sample_fault_count",
    "STTRAMArray",
    "ScrubEngine",
    "ScrubReport",
    "WriteErrorChannel",
    "DisturbChannel",
    "HeterogeneousFaultInjector",
    "WeakCellMap",
]
