"""Spatially heterogeneous fault injection: static weak-cell populations.

The analytical chapters follow the paper in treating every bit as
flipping iid at the *variation-averaged* BER.  Physically, process
variation is static: each cell draws its thermal stability Delta once at
manufacture, and the array's fault activity is dominated by a fixed
population of *weak* cells that fail over and over, not by a uniform
rain of flips.  Whether this correlation changes SuDoku's failure rate
is a fair question the paper does not examine -- two weak cells that
happen to share a line make that line multi-bit-faulty *every few
intervals*, not once per blue moon.

:class:`WeakCellMap` samples the static population efficiently: cells
whose flip probability per interval exceeds a floor are materialised
individually (there are few -- the Delta tail is steep), and the rest of
the array contributes a uniform background rate.  The split is exact in
expectation: materialised mass + background mass = the variation-
averaged BER of :mod:`repro.sttram.variation`.

:class:`HeterogeneousFaultInjector` then drives campaigns exactly like
:class:`repro.sttram.faults.TransientFaultInjector`, so the question is
answered by experiment (`bench_heterogeneity.py`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np
from scipy import integrate, stats

from repro.coding.bitvec import flip_bits
from repro.core.rng import SeedLike, resolve_rng
from repro.sttram.device import THERMAL_ATTEMPT_FREQUENCY_HZ
from repro.sttram.variation import effective_ber


@dataclass(frozen=True)
class WeakCell:
    """One materialised weak cell."""

    line_index: int
    bit_position: int
    flip_probability: float


class WeakCellMap:
    """A static weak-cell population plus a uniform background rate.

    :param num_lines: array lines.
    :param line_bits: bits per line.
    :param delta_mean / delta_sigma: the variation model.
    :param interval_s: scrub interval the probabilities refer to.
    :param floor: per-interval flip probability above which a cell is
        materialised individually (default 1e-4: cells failing at least
        ~once per 10^4 intervals).
    """

    def __init__(
        self,
        num_lines: int,
        line_bits: int,
        delta_mean: float = 35.0,
        delta_sigma: float = 3.5,
        interval_s: float = 0.020,
        floor: float = 1e-4,
        rng: Optional[np.random.Generator] = None,
        *,
        seed: Optional[SeedLike] = None,
    ) -> None:
        if num_lines <= 0 or line_bits <= 0:
            raise ValueError("geometry must be positive")
        if not 0.0 < floor < 1.0:
            raise ValueError("floor must be in (0, 1)")
        self.num_lines = num_lines
        self.line_bits = line_bits
        self.interval_s = interval_s
        self.floor = floor
        generator = resolve_rng(rng, seed, owner="WeakCellMap")

        # Delta below which a cell's per-interval flip probability
        # exceeds the floor:  1 - exp(-f0 e^-D t) > floor.
        rate_needed = -math.log1p(-floor) / interval_s
        delta_cut = math.log(THERMAL_ATTEMPT_FREQUENCY_HZ / rate_needed)
        distribution = stats.norm(loc=delta_mean, scale=delta_sigma)
        p_weak_cell = float(distribution.cdf(delta_cut))

        total_cells = num_lines * line_bits
        count = int(generator.binomial(total_cells, p_weak_cell))
        self.cells: List[WeakCell] = []
        for _ in range(count):
            flat = int(generator.integers(0, total_cells))
            line_index, bit_position = divmod(flat, line_bits)
            # Delta conditioned on the weak tail (inverse-CDF sampling).
            quantile = generator.uniform(0.0, p_weak_cell)
            delta = float(distribution.ppf(quantile))
            rate = THERMAL_ATTEMPT_FREQUENCY_HZ * math.exp(-delta)
            probability = -math.expm1(-rate * interval_s)
            self.cells.append(
                WeakCell(line_index, bit_position, min(probability, 1.0))
            )

        # Background: the variation-averaged BER minus the materialised
        # tail's mass, spread uniformly over all cells.
        total_ber = effective_ber(delta_mean, delta_sigma, interval_s)
        tail_mass = self._tail_mass(distribution, delta_cut, interval_s)
        self.background_ber = max(total_ber - tail_mass, 0.0)
        self.total_ber = total_ber

    @staticmethod
    def _tail_mass(distribution, delta_cut: float, interval_s: float) -> float:
        """E[p_cell ; Delta < delta_cut]: the materialised share of BER."""

        def integrand(delta: float) -> float:
            rate = THERMAL_ATTEMPT_FREQUENCY_HZ * math.exp(-delta)
            return -math.expm1(-rate * interval_s) * distribution.pdf(delta)

        low = distribution.mean() - 12.0 * distribution.std()
        value, _ = integrate.quad(integrand, low, delta_cut, limit=200)
        # Everything far below the window flips with certainty.
        value += float(distribution.cdf(low))
        return value

    def expected_flips_per_interval(self) -> float:
        """Mean faulty bits per interval (weak cells + background)."""
        weak = sum(cell.flip_probability for cell in self.cells)
        return weak + self.background_ber * self.num_lines * self.line_bits

    def lines_with_multiple_weak_cells(self) -> Dict[int, int]:
        """line -> materialised weak-cell count, for lines holding >= 2.

        These are the hot spots iid modelling misses: lines that will be
        multi-bit-faulty over and over.
        """
        counts: Dict[int, int] = {}
        for cell in self.cells:
            counts[cell.line_index] = counts.get(cell.line_index, 0) + 1
        return {line: count for line, count in counts.items() if count >= 2}


class HeterogeneousFaultInjector:
    """Campaign-compatible injector driven by a :class:`WeakCellMap`."""

    def __init__(
        self,
        weak_map: WeakCellMap,
        rng: Optional[np.random.Generator] = None,
        *,
        seed: Optional[SeedLike] = None,
    ) -> None:
        self.weak_map = weak_map
        self._rng = resolve_rng(rng, seed, owner="HeterogeneousFaultInjector")

    def error_vectors(self, num_lines: int) -> Dict[int, int]:
        """One interval's faults: weak cells fire + uniform background."""
        if num_lines != self.weak_map.num_lines:
            raise ValueError("injector geometry mismatch")
        vectors: Dict[int, int] = {}
        # Materialised weak cells fire independently.
        draws = self._rng.random(len(self.weak_map.cells))
        for cell, draw in zip(self.weak_map.cells, draws):
            if draw < cell.flip_probability:
                vectors[cell.line_index] = vectors.get(cell.line_index, 0) | (
                    1 << cell.bit_position
                )
        # Uniform background over the whole array.
        total_bits = num_lines * self.weak_map.line_bits
        count = int(self._rng.binomial(total_bits, self.weak_map.background_ber))
        for _ in range(count):
            flat = int(self._rng.integers(0, total_bits))
            line_index, bit_position = divmod(flat, self.weak_map.line_bits)
            vectors[line_index] = vectors.get(line_index, 0) | (1 << bit_position)
        return vectors
