"""repro.obs -- the unified telemetry layer.

A dependency-free observability subsystem shared by the functional
engines, the reliability campaigns, and the performance simulator:

* :class:`MetricsRegistry` -- labelled counters / gauges / fixed-bucket
  histograms (``sudoku_corrections_total{mechanism="raid4"}``,
  ``campaign_interval_seconds``, ...).
* :class:`Tracer` -- nested wall-clock spans with a context-manager API
  and a bounded ring of completed spans.
* :class:`ProgressReporter` -- throttled rate/ETA heartbeat lines for
  multi-minute campaigns.
* :mod:`repro.obs.export` -- Prometheus text exposition, JSONL dumps,
  and run manifests (config, seed, git SHA, durations).

Everything defaults to null objects (:data:`NULL_TELEMETRY`,
:class:`NullRegistry`, :class:`NullTracer`, :data:`NULL_PROGRESS`), so
instrumented hot paths pay only a no-op method call when telemetry is
detached and simulation results are bit-identical either way.

Typical attachment::

    from repro.obs import Telemetry

    telemetry = Telemetry.create()
    engine.attach_telemetry(telemetry)
    result = run_engine_campaign(engine, ber, intervals, telemetry=telemetry)
    print(telemetry.prometheus_text())
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.obs.atomicio import atomic_write_json, atomic_write_text
from repro.obs.export import (
    build_manifest,
    git_sha,
    metrics_snapshot,
    metrics_to_json_lines,
    to_prometheus_text,
    write_manifest,
    write_metrics_json_lines,
    write_metrics_text,
    write_spans_json_lines,
)
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    MetricsRegistry,
    NullRegistry,
    merge_registry,
)
from repro.obs.progress import NULL_PROGRESS, NullProgress, ProgressReporter
from repro.obs.tracing import (
    NullTracer,
    Span,
    Tracer,
    export_spans,
    merge_traces,
)


@dataclass
class Telemetry:
    """The registry + tracer pair instrumented code carries around.

    Use :meth:`create` for a live bundle and :meth:`null` (or the shared
    :data:`NULL_TELEMETRY`) for the zero-cost default.  ``enabled`` is
    the one flag hot paths may branch on to skip clock reads or label
    formatting entirely.
    """

    metrics: MetricsRegistry = field(default_factory=MetricsRegistry)
    tracer: Tracer = field(default_factory=Tracer)

    @property
    def enabled(self) -> bool:
        """True when at least one backend actually records."""
        return bool(self.metrics.enabled or self.tracer.enabled)

    @classmethod
    def create(cls, span_capacity: int = 65_536) -> "Telemetry":
        """A live telemetry bundle."""
        return cls(metrics=MetricsRegistry(), tracer=Tracer(capacity=span_capacity))

    @classmethod
    def null(cls) -> "Telemetry":
        """The shared zero-cost bundle."""
        return NULL_TELEMETRY

    # -- export conveniences ---------------------------------------------------------

    def prometheus_text(self) -> str:
        """The registry in Prometheus text exposition format."""
        return to_prometheus_text(self.metrics)

    def spans_json_lines(self) -> str:
        """Completed spans as newline-delimited JSON."""
        return self.tracer.to_json_lines()


#: The shared zero-cost bundle every instrumented default points at.
NULL_TELEMETRY = Telemetry(metrics=NullRegistry(), tracer=NullTracer())


def resolve_telemetry(telemetry: Optional[Telemetry]) -> Telemetry:
    """``telemetry`` if given, else the shared null bundle."""
    return telemetry if telemetry is not None else NULL_TELEMETRY


__all__ = [
    "DEFAULT_BUCKETS",
    "MetricsRegistry",
    "NullRegistry",
    "merge_registry",
    "Tracer",
    "NullTracer",
    "Span",
    "export_spans",
    "merge_traces",
    "ProgressReporter",
    "NullProgress",
    "NULL_PROGRESS",
    "Telemetry",
    "NULL_TELEMETRY",
    "resolve_telemetry",
    "to_prometheus_text",
    "metrics_snapshot",
    "metrics_to_json_lines",
    "write_metrics_text",
    "write_metrics_json_lines",
    "write_spans_json_lines",
    "build_manifest",
    "write_manifest",
    "git_sha",
    "atomic_write_text",
    "atomic_write_json",
]
