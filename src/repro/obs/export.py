"""Telemetry exporters: Prometheus text format, JSONL, run manifests.

The registry and tracer are storage; this module is the serialisation
boundary.  Three formats:

* :func:`to_prometheus_text` -- the Prometheus text exposition format
  (``# HELP`` / ``# TYPE`` headers, cumulative ``_bucket`` series with
  ``le`` labels, ``_sum`` / ``_count``), scrapeable by any Prometheus-
  compatible collector.
* :func:`metrics_to_json_lines` / ``Tracer.to_json_lines`` -- newline-
  delimited JSON for ad-hoc analysis without a metrics stack.
* :func:`build_manifest` / :func:`write_manifest` -- a run manifest
  (command, config, seed, git SHA, durations) so any exported metrics
  file can be traced back to the exact run that produced it.

All file writers route through :func:`repro.obs.atomicio.atomic_write_text`
(tmp file in the destination directory + ``os.replace``), so a run killed
mid-export never leaves a truncated artifact.
"""

from __future__ import annotations

import json
import platform
import subprocess
import sys
from typing import Dict, List, Optional

from repro.obs.atomicio import atomic_write_text
from repro.obs.metrics import (
    CounterChild,
    GaugeChild,
    HistogramChild,
    MetricsRegistry,
)
from repro.obs.tracing import Tracer


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_labels(names, values, extra: str = "") -> str:
    pairs = [
        f'{name}="{_escape_label_value(value)}"'
        for name, value in zip(names, values)
    ]
    if extra:
        pairs.append(extra)
    return "{" + ",".join(pairs) + "}" if pairs else ""


def _format_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


def to_prometheus_text(registry: MetricsRegistry) -> str:
    """Render every family in the Prometheus text exposition format."""
    lines: List[str] = []
    for family in registry.families():
        if family.help:
            lines.append(f"# HELP {family.name} {family.help}")
        lines.append(f"# TYPE {family.name} {family.kind}")
        for values, child in family.samples():
            if isinstance(child, HistogramChild):
                cumulative = child.cumulative_counts()
                edges = [_format_value(edge) for edge in child.buckets] + ["+Inf"]
                for edge, count in zip(edges, cumulative):
                    labels = _format_labels(
                        family.label_names, values, extra=f'le="{edge}"'
                    )
                    lines.append(f"{family.name}_bucket{labels} {count}")
                labels = _format_labels(family.label_names, values)
                lines.append(
                    f"{family.name}_sum{labels} {_format_value(child.sum)}"
                )
                lines.append(f"{family.name}_count{labels} {child.count}")
            else:
                labels = _format_labels(family.label_names, values)
                lines.append(
                    f"{family.name}{labels} {_format_value(child.value)}"
                )
    return "\n".join(lines) + ("\n" if lines else "")


def metrics_snapshot(registry: MetricsRegistry) -> List[Dict[str, object]]:
    """One JSON-serialisable record per series, for streaming consumers.

    The same records :func:`metrics_to_json_lines` serialises, returned
    as plain dicts so SSE streams (and tests) can embed them without a
    parse round-trip.
    """
    records: List[Dict[str, object]] = []
    for family in registry.families():
        for values, child in family.samples():
            record: Dict[str, object] = {
                "name": family.name,
                "type": family.kind,
                "labels": dict(zip(family.label_names, values)),
            }
            if isinstance(child, HistogramChild):
                record["buckets"] = list(child.buckets)
                record["counts"] = child.cumulative_counts()
                record["sum"] = child.sum
                record["count"] = child.count
            elif isinstance(child, (CounterChild, GaugeChild)):
                record["value"] = child.value
            records.append(record)
    return records


def metrics_to_json_lines(registry: MetricsRegistry) -> str:
    """One JSON record per series (histograms keep their bucket arrays)."""
    records = [
        json.dumps(record, separators=(",", ":"))
        for record in metrics_snapshot(registry)
    ]
    return "\n".join(records) + ("\n" if records else "")


def write_metrics_text(registry: MetricsRegistry, path: str) -> None:
    """Write the Prometheus text exposition to ``path`` (atomically)."""
    atomic_write_text(path, to_prometheus_text(registry))


def write_metrics_json_lines(registry: MetricsRegistry, path: str) -> None:
    """Write the JSONL metric dump to ``path`` (atomically)."""
    atomic_write_text(path, metrics_to_json_lines(registry))


def write_spans_json_lines(tracer: Tracer, path: str) -> None:
    """Write the tracer's completed spans as JSONL to ``path`` (atomically)."""
    text = tracer.to_json_lines()
    atomic_write_text(path, text + ("\n" if text else ""))


def git_sha(cwd: Optional[str] = None) -> Optional[str]:
    """The current git commit SHA, or None outside a repo / without git."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=cwd,
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else None


def build_manifest(
    command: str,
    config: Optional[Dict[str, object]] = None,
    seed: Optional[int] = None,
    durations_s: Optional[Dict[str, float]] = None,
    extra: Optional[Dict[str, object]] = None,
) -> Dict[str, object]:
    """Assemble the run-manifest dict (no filesystem access except git)."""
    manifest: Dict[str, object] = {
        "command": command,
        "config": dict(config) if config else {},
        "seed": seed,
        "git_sha": git_sha(),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "argv": list(sys.argv),
        "durations_s": dict(durations_s) if durations_s else {},
    }
    if extra:
        manifest.update(extra)
    return manifest


def write_manifest(path: str, manifest: Dict[str, object]) -> None:
    """Write a manifest dict as pretty JSON to ``path`` (atomically)."""
    atomic_write_text(
        path,
        json.dumps(manifest, indent=2, sort_keys=True, default=str) + "\n",
    )
