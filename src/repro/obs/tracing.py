"""Nested wall-clock span tracing with a bounded completed-span ring.

A :class:`Tracer` hands out context-manager spans::

    with tracer.span("sdr_repair", group=7, level="Z"):
        ...

Spans nest lexically: the tracer keeps an active-span stack, so each
completed span knows its parent and depth, and the ring of finished
spans (a ``deque(maxlen=...)``; the oldest are dropped, with a counter)
serialises to JSON lines for offline analysis.  :class:`NullTracer`
is the zero-cost stand-in: ``span()`` returns one shared no-op context
manager and never reads the clock.
"""

from __future__ import annotations

import json
import time
from collections import deque
from typing import Callable, Deque, Dict, Iterator, List, Optional


class Span:
    """One timed operation; use as a context manager via ``Tracer.span``."""

    __slots__ = (
        "_tracer", "name", "attributes", "span_id", "parent_id",
        "depth", "start_s", "end_s", "status",
    )

    def __init__(self, tracer: "Tracer", name: str, attributes: Dict) -> None:
        self._tracer = tracer
        self.name = name
        self.attributes = attributes
        self.span_id = -1
        self.parent_id: Optional[int] = None
        self.depth = 0
        self.start_s = 0.0
        self.end_s = 0.0
        self.status = "ok"

    @property
    def duration_s(self) -> float:
        """Wall-clock duration (0 until the span has finished)."""
        return max(0.0, self.end_s - self.start_s)

    def set_attribute(self, key: str, value) -> None:
        """Attach an attribute after the span has started."""
        self.attributes[key] = value

    def __enter__(self) -> "Span":
        self._tracer._enter(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            self.status = "error"
            self.attributes.setdefault("exception", exc_type.__name__)
        self._tracer._exit(self)

    def to_dict(self) -> Dict:
        """Plain-dict form (the JSONL record)."""
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "depth": self.depth,
            "start_s": self.start_s,
            "end_s": self.end_s,
            "duration_s": self.duration_s,
            "status": self.status,
            "attributes": self.attributes,
        }


class Tracer:
    """Produces nested spans and retains the most recent completed ones.

    :param capacity: bound on retained completed spans; the oldest are
        dropped beyond it (``dropped`` keeps counting).
    :param clock: monotonic time source, injectable for deterministic
        tests.
    """

    enabled = True

    def __init__(
        self,
        capacity: int = 65_536,
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._clock = clock
        self._finished: Deque[Span] = deque(maxlen=capacity)
        self._stack: List[Span] = []
        self._next_id = 0
        self.dropped = 0
        self.started = 0

    def span(self, name: str, **attributes) -> Span:
        """A new span; enter it with ``with``."""
        return Span(self, name, attributes)

    # -- span lifecycle (called by Span) -------------------------------------------

    def _enter(self, span: Span) -> None:
        span.span_id = self._next_id
        self._next_id += 1
        self.started += 1
        if self._stack:
            span.parent_id = self._stack[-1].span_id
            span.depth = self._stack[-1].depth + 1
        self._stack.append(span)
        span.start_s = self._clock()

    def _exit(self, span: Span) -> None:
        span.end_s = self._clock()
        # Tolerate out-of-order exits (generator-held spans): unwind to
        # this span rather than corrupting the stack.
        while self._stack:
            top = self._stack.pop()
            if top is span:
                break
        if len(self._finished) == self.capacity:
            self.dropped += 1
        self._finished.append(span)

    # -- access --------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._finished)

    def __iter__(self) -> Iterator[Span]:
        """Completed spans, oldest first (completion order)."""
        return iter(self._finished)

    @property
    def active_depth(self) -> int:
        """How many spans are currently open."""
        return len(self._stack)

    def spans_named(self, name: str) -> List[Span]:
        """Completed spans with the given name."""
        return [span for span in self._finished if span.name == name]

    def names(self) -> List[str]:
        """Distinct completed-span names, first-seen order."""
        seen: Dict[str, None] = {}
        for span in self._finished:
            seen.setdefault(span.name, None)
        return list(seen)

    def to_json_lines(self) -> str:
        """Completed spans as newline-delimited JSON."""
        return "\n".join(
            json.dumps(span.to_dict(), separators=(",", ":"), default=str)
            for span in self._finished
        )


class _NullSpan:
    """Shared no-op span context manager."""

    __slots__ = ()
    name = ""
    duration_s = 0.0

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass

    def set_attribute(self, key: str, value) -> None:
        pass


_NULL_SPAN = _NullSpan()


class NullTracer:
    """Zero-cost tracer: never reads the clock, retains nothing."""

    enabled = False
    dropped = 0
    started = 0
    active_depth = 0

    def span(self, name: str, **attributes) -> _NullSpan:
        return _NULL_SPAN

    def __len__(self) -> int:
        return 0

    def __iter__(self) -> Iterator[Span]:
        return iter(())

    def spans_named(self, name: str) -> List[Span]:
        return []

    def names(self) -> List[str]:
        return []

    def to_json_lines(self) -> str:
        return ""
