"""Nested wall-clock span tracing with a bounded completed-span ring.

A :class:`Tracer` hands out context-manager spans::

    with tracer.span("sdr_repair", group=7, level="Z"):
        ...

Spans nest lexically: the tracer keeps an active-span stack, so each
completed span knows its parent and depth, and the ring of finished
spans (a ``deque(maxlen=...)``; the oldest are dropped, with a counter)
serialises to JSON lines for offline analysis.  :class:`NullTracer`
is the zero-cost stand-in: ``span()`` returns one shared no-op context
manager and never reads the clock.
"""

from __future__ import annotations

import json
import time
from collections import deque
from typing import Callable, Deque, Dict, Iterator, List, Optional


class Span:
    """One timed operation; use as a context manager via ``Tracer.span``."""

    __slots__ = (
        "_tracer", "name", "attributes", "span_id", "parent_id",
        "depth", "start_s", "end_s", "status",
    )

    def __init__(self, tracer: "Tracer", name: str, attributes: Dict) -> None:
        self._tracer = tracer
        self.name = name
        self.attributes = attributes
        self.span_id = -1
        self.parent_id: Optional[int] = None
        self.depth = 0
        self.start_s = 0.0
        self.end_s = 0.0
        self.status = "ok"

    @property
    def duration_s(self) -> float:
        """Wall-clock duration (0 until the span has finished)."""
        return max(0.0, self.end_s - self.start_s)

    def set_attribute(self, key: str, value) -> None:
        """Attach an attribute after the span has started."""
        self.attributes[key] = value

    def __enter__(self) -> "Span":
        self._tracer._enter(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            self.status = "error"
            self.attributes.setdefault("exception", exc_type.__name__)
        self._tracer._exit(self)

    def to_dict(self) -> Dict:
        """Plain-dict form (the JSONL record)."""
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "depth": self.depth,
            "start_s": self.start_s,
            "end_s": self.end_s,
            "duration_s": self.duration_s,
            "status": self.status,
            "attributes": self.attributes,
        }


class Tracer:
    """Produces nested spans and retains the most recent completed ones.

    :param capacity: bound on retained completed spans; the oldest are
        dropped beyond it (``dropped`` keeps counting).
    :param clock: monotonic time source, injectable for deterministic
        tests.
    """

    enabled = True

    def __init__(
        self,
        capacity: int = 65_536,
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._clock = clock
        self._finished: Deque[Span] = deque(maxlen=capacity)
        self._stack: List[Span] = []
        self._next_id = 0
        self.dropped = 0
        self.started = 0

    def span(self, name: str, **attributes) -> Span:
        """A new span; enter it with ``with``."""
        return Span(self, name, attributes)

    # -- span lifecycle (called by Span) -------------------------------------------

    def _enter(self, span: Span) -> None:
        span.span_id = self._next_id
        self._next_id += 1
        self.started += 1
        if self._stack:
            span.parent_id = self._stack[-1].span_id
            span.depth = self._stack[-1].depth + 1
        self._stack.append(span)
        span.start_s = self._clock()

    def _exit(self, span: Span) -> None:
        span.end_s = self._clock()
        # Tolerate out-of-order exits (generator-held spans): unwind to
        # this span rather than corrupting the stack.
        while self._stack:
            top = self._stack.pop()
            if top is span:
                break
        if len(self._finished) == self.capacity:
            self.dropped += 1
        self._finished.append(span)

    # -- access --------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._finished)

    def __iter__(self) -> Iterator[Span]:
        """Completed spans, oldest first (completion order)."""
        return iter(self._finished)

    @property
    def active_depth(self) -> int:
        """How many spans are currently open."""
        return len(self._stack)

    def spans_named(self, name: str) -> List[Span]:
        """Completed spans with the given name."""
        return [span for span in self._finished if span.name == name]

    def names(self) -> List[str]:
        """Distinct completed-span names, first-seen order."""
        seen: Dict[str, None] = {}
        for span in self._finished:
            seen.setdefault(span.name, None)
        return list(seen)

    def to_json_lines(self) -> str:
        """Completed spans as newline-delimited JSON."""
        return "\n".join(
            json.dumps(span.to_dict(), separators=(",", ":"), default=str)
            for span in self._finished
        )


class _NullSpan:
    """Shared no-op span context manager."""

    __slots__ = ()
    name = ""
    duration_s = 0.0

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass

    def set_attribute(self, key: str, value) -> None:
        pass


_NULL_SPAN = _NullSpan()


class NullTracer:
    """Zero-cost tracer: never reads the clock, retains nothing."""

    enabled = False
    capacity = 0
    dropped = 0
    started = 0
    active_depth = 0

    def span(self, name: str, **attributes) -> _NullSpan:
        return _NULL_SPAN

    def __len__(self) -> int:
        return 0

    def __iter__(self) -> Iterator[Span]:
        return iter(())

    def spans_named(self, name: str) -> List[Span]:
        return []

    def names(self) -> List[str]:
        return []

    def to_json_lines(self) -> str:
        return ""


def export_spans(tracer) -> List[Dict]:
    """Completed spans as plain dicts -- the cross-process wire form.

    Worker processes cannot ship :class:`Span` objects (they hold a
    tracer reference); they ship this instead, and the parent adopts
    with :func:`merge_traces`.  A :class:`NullTracer` exports ``[]``.
    """
    return [span.to_dict() for span in tracer]


def merge_traces(target, spans, shard: Optional[int] = None) -> int:
    """Adopt completed worker spans into ``target`` (cf. merge_registry).

    ``spans`` is a :class:`Tracer` or an iterable of span dicts (the
    :func:`export_spans` wire form).  Adopted spans keep their names,
    attributes, durations, statuses, and completion order; span ids are
    remapped onto the target's id sequence, the worker's root spans are
    re-parented under the target's innermost *active* span (so a merge
    performed inside ``with tracer.span("sharded_campaign")`` files every
    worker under that span), and ``shard`` -- when given -- is stamped on
    every adopted span's attributes.

    Merging shards in a fixed (sorted-index) order therefore yields a
    trace whose structure -- names, depths, parent chains, shard tags --
    is bit-stable across same-seed reruns; only the clock readings vary.
    Worker ``start_s``/``end_s`` are per-process monotonic readings:
    durations are meaningful, cross-process offsets are not, so they are
    adopted untranslated.

    Returns the number of spans adopted; a disabled ``target`` (the
    :class:`NullTracer`) adopts nothing.
    """
    if not getattr(target, "enabled", False):
        return 0
    payload = [
        span.to_dict() if isinstance(span, Span) else dict(span)
        for span in spans
    ]
    if not payload:
        return 0
    base = target._stack[-1] if target._stack else None
    base_depth = base.depth + 1 if base is not None else 0
    # Two passes: completed spans arrive in completion order, so a
    # worker parent is exported *after* its children -- the id map must
    # be complete before any parent link is resolved.
    id_map: Dict[object, int] = {}
    adopted: List[Span] = []
    for entry in payload:
        span = Span(
            target,
            str(entry.get("name", "")),
            dict(entry.get("attributes", {})),
        )
        if shard is not None:
            span.attributes["shard"] = shard
        span.span_id = target._next_id
        target._next_id += 1
        target.started += 1
        id_map[entry.get("span_id")] = span.span_id
        span.depth = int(entry.get("depth", 0)) + base_depth
        span.start_s = float(entry.get("start_s", 0.0))
        span.end_s = float(entry.get("end_s", 0.0))
        span.status = str(entry.get("status", "ok"))
        adopted.append(span)
    for entry, span in zip(payload, adopted):
        parent = entry.get("parent_id")
        if parent is not None and parent in id_map:
            span.parent_id = id_map[parent]
        elif base is not None:
            # A worker root (or a span whose parent fell out of the
            # worker's bounded ring): file it under the merge point.
            span.parent_id = base.span_id
        if len(target._finished) == target.capacity:
            target.dropped += 1
        target._finished.append(span)
    return len(payload)
