"""Heartbeat progress reporting for long-running campaigns.

Monte-Carlo and rare-event campaigns run for minutes with no output;
:class:`ProgressReporter` emits throttled rate/ETA lines so an operator
(or a fleet log scraper) can see the run is alive::

    [campaign] 1200/5000 (24.0%) 312.4/s eta 12.2s

Lines go to ``stream`` (stderr by default, so stdout stays parseable).
Emission is time-throttled -- at most one line per ``min_interval_s`` --
so per-item ``update()`` calls from tight loops stay cheap.
:class:`NullProgress` is the no-op default instrumented code holds when
progress display is off.
"""

from __future__ import annotations

import sys
import time
from typing import Callable, Dict, Optional, TextIO


def _format_duration(seconds: float) -> str:
    if seconds < 0 or seconds != seconds:  # negative or NaN
        return "?"
    if seconds < 60:
        return f"{seconds:.1f}s"
    minutes, secs = divmod(int(seconds), 60)
    if minutes < 60:
        return f"{minutes}m{secs:02d}s"
    hours, minutes = divmod(minutes, 60)
    return f"{hours}h{minutes:02d}m"


class ProgressReporter:
    """Rate/ETA heartbeat for a loop of known (or unknown) length.

    :param total: expected number of items (None disables ETA/percent).
    :param label: prefix identifying the loop in shared logs.
    :param stream: where heartbeat lines go (default stderr).
    :param min_interval_s: minimum spacing between emitted lines.
    :param clock: monotonic time source, injectable for tests.
    :param initial_done: items already completed before this reporter
        started (a resumed campaign restoring ``completed`` from a
        checkpoint).  Percent/position count it; rate and ETA do *not* --
        they are computed from work done this session only, so a resume
        never reports an inflated rate or a bogus ETA.
    """

    enabled = True

    def __init__(
        self,
        total: Optional[int] = None,
        label: str = "progress",
        stream: Optional[TextIO] = None,
        min_interval_s: float = 1.0,
        clock: Callable[[], float] = time.monotonic,
        initial_done: int = 0,
    ) -> None:
        if total is not None and total < 0:
            raise ValueError("total must be non-negative")
        if initial_done < 0:
            raise ValueError("initial_done must be non-negative")
        self.total = total
        self.label = label
        self.stream = stream if stream is not None else sys.stderr
        self.min_interval_s = min_interval_s
        self._clock = clock
        self.initial_done = initial_done
        self.done = initial_done
        self.started_s = self._clock()
        self._last_emit_s = self.started_s
        self.lines_emitted = 0
        self._finished = False

    # -- updates -------------------------------------------------------------------

    def update(self, done: Optional[int] = None, advance: int = 1) -> None:
        """Advance the loop (or set absolute progress) and maybe emit."""
        self.done = done if done is not None else self.done + advance
        now = self._clock()
        if now - self._last_emit_s >= self.min_interval_s:
            self._emit(now)

    def note_resumed(self, units: int) -> None:
        """Record ``units`` restored from a checkpoint, not done now.

        Advances the position without counting toward the session rate;
        sharded campaigns call this as each shard reports its resume
        offset.
        """
        if units < 0:
            raise ValueError("resumed units must be non-negative")
        self.initial_done += units
        self.done += units

    def finish(self) -> None:
        """Emit the final summary line (always, regardless of throttle)."""
        if self._finished:
            return
        self._finished = True
        self._emit(self._clock(), final=True)

    def __enter__(self) -> "ProgressReporter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.finish()

    # -- formatting ----------------------------------------------------------------

    def rate(self, now: Optional[float] = None) -> float:
        """Items per second *this session* (excludes resumed work)."""
        elapsed = (now if now is not None else self._clock()) - self.started_s
        session_done = self.done - self.initial_done
        return session_done / elapsed if elapsed > 0 else 0.0

    def eta_s(self, now: Optional[float] = None) -> Optional[float]:
        """Estimated seconds to completion (None when unknowable).

        Based on the session rate: a resumed campaign's checkpointed
        intervals took no time this run, so they must not shrink the ETA.
        """
        if self.total is None or self.done <= self.initial_done:
            return None
        rate = self.rate(now)
        return (self.total - self.done) / rate if rate > 0 else None

    def render(self, now: Optional[float] = None, final: bool = False) -> str:
        """The heartbeat line for the current state."""
        now = now if now is not None else self._clock()
        parts = [f"[{self.label}]"]
        if self.total:
            parts.append(f"{self.done}/{self.total}")
            parts.append(f"({100.0 * self.done / self.total:.1f}%)")
        else:
            parts.append(str(self.done))
        parts.append(f"{self.rate(now):.1f}/s")
        if final:
            parts.append(f"done in {_format_duration(now - self.started_s)}")
        else:
            eta = self.eta_s(now)
            if eta is not None:
                parts.append(f"eta {_format_duration(eta)}")
        return " ".join(parts)

    def snapshot(self, now: Optional[float] = None) -> Dict[str, object]:
        """JSON-serialisable progress state for streaming consumers.

        ``eta_s`` is ``None`` (not 0) when unknowable -- unknown total,
        or no session work yet (e.g. immediately after a resume).
        """
        now = now if now is not None else self._clock()
        return {
            "label": self.label,
            "done": self.done,
            "total": self.total,
            "initial_done": self.initial_done,
            "rate": self.rate(now),
            "eta_s": self.eta_s(now),
        }

    def _emit(self, now: float, final: bool = False) -> None:
        self._last_emit_s = now
        self.lines_emitted += 1
        print(self.render(now, final=final), file=self.stream)


class NullProgress:
    """Zero-cost progress stand-in."""

    enabled = False
    done = 0
    total = None
    initial_done = 0
    lines_emitted = 0

    def update(self, done: Optional[int] = None, advance: int = 1) -> None:
        pass

    def note_resumed(self, units: int) -> None:
        pass

    def finish(self) -> None:
        pass

    def snapshot(self, now: Optional[float] = None) -> Dict[str, object]:
        return {
            "label": "null",
            "done": 0,
            "total": None,
            "initial_done": 0,
            "rate": 0.0,
            "eta_s": None,
        }

    def __enter__(self) -> "NullProgress":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


NULL_PROGRESS = NullProgress()
