"""Crash-safe file writes.

Every artifact writer in the toolkit (metrics dumps, trace files,
manifests, campaign checkpoints) goes through :func:`atomic_write_text`:
the content is written to a ``*.tmp`` file *in the destination
directory* (same filesystem, so the final rename cannot cross a mount
boundary) and moved into place with :func:`os.replace`, which POSIX
guarantees to be atomic.  A run killed mid-write leaves either the old
artifact or the new one -- never a truncated hybrid.
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Any


def atomic_write_text(path: str, text: str) -> None:
    """Write ``text`` to ``path`` atomically (tmp file + ``os.replace``)."""
    directory = os.path.dirname(os.path.abspath(path))
    descriptor, tmp_path = tempfile.mkstemp(
        prefix=os.path.basename(path) + ".", suffix=".tmp", dir=directory
    )
    try:
        with os.fdopen(descriptor, "w", encoding="utf-8") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, path)
    except BaseException:
        # Includes KeyboardInterrupt: never leave a stray tmp file behind.
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise


def atomic_write_json(path: str, payload: Any, indent: int = 2) -> None:
    """Serialise ``payload`` as JSON and write it atomically."""
    atomic_write_text(
        path,
        json.dumps(payload, indent=indent, sort_keys=True, default=str) + "\n",
    )
