"""Labelled metric families: counters, gauges, fixed-bucket histograms.

The registry is deliberately dependency-free and single-process: it
exists so campaigns, engines, and the perf simulator can expose
machine-readable run telemetry (``sudoku_corrections_total{mechanism=
"raid4"}``, ``campaign_interval_seconds`` buckets, ...) without pulling
a metrics client into a simulation package.  Export formats live in
:mod:`repro.obs.export`; the registry itself only stores samples.

Two design rules keep the hot paths honest:

* **Null-object default.**  :class:`NullRegistry` implements the whole
  surface as no-ops, so instrumented code never branches on "is
  telemetry attached?" -- it calls the same methods either way and the
  engines stay bit-identical with telemetry on or off.
* **Child caching.**  ``family.labels(...)`` returns a mutable child
  that can be held and incremented directly, so per-event work is one
  attribute bump, not a dict lookup per label set.
"""

from __future__ import annotations

import re
from bisect import bisect_left
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Default histogram buckets, biased toward the simulator's time scales
#: (nanosecond device latencies up to multi-second campaign intervals).
DEFAULT_BUCKETS: Tuple[float, ...] = (
    1e-9, 1e-8, 1e-7, 1e-6, 1e-5, 1e-4, 1e-3,
    0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 30.0, 120.0,
)


def _check_name(name: str) -> str:
    if not _NAME_RE.match(name):
        raise ValueError(f"invalid metric name {name!r}")
    return name


def _check_labels(labels: Sequence[str]) -> Tuple[str, ...]:
    for label in labels:
        if not _LABEL_RE.match(label):
            raise ValueError(f"invalid label name {label!r}")
    if len(set(labels)) != len(labels):
        raise ValueError(f"duplicate label names in {labels!r}")
    return tuple(labels)


class CounterChild:
    """One labelled counter series (monotonically increasing)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative) to the series."""
        if amount < 0:
            raise ValueError("counters can only increase")
        self.value += amount


class GaugeChild:
    """One labelled gauge series (free-form current value)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class HistogramChild:
    """One labelled histogram series over fixed bucket edges.

    Bucket semantics follow Prometheus: an observation lands in the
    first bucket whose upper edge is ``>= value`` (edges are inclusive),
    with an implicit ``+Inf`` bucket catching the overflow.
    """

    __slots__ = ("buckets", "counts", "sum", "count")

    def __init__(self, buckets: Tuple[float, ...]) -> None:
        self.buckets = buckets
        self.counts = [0] * (len(buckets) + 1)  # trailing slot = +Inf
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        """Record one observation."""
        self.counts[bisect_left(self.buckets, value)] += 1
        self.sum += value
        self.count += 1

    def cumulative_counts(self) -> List[int]:
        """Counts per bucket, cumulative, ending with the +Inf total."""
        out: List[int] = []
        running = 0
        for count in self.counts:
            running += count
            out.append(running)
        return out


_CHILD_TYPES = {
    "counter": CounterChild,
    "gauge": GaugeChild,
    "histogram": HistogramChild,
}


class MetricFamily:
    """A named metric plus all its labelled children."""

    def __init__(
        self,
        name: str,
        help_text: str,
        kind: str,
        label_names: Tuple[str, ...],
        buckets: Tuple[float, ...] = (),
    ) -> None:
        self.name = _check_name(name)
        self.help = help_text
        self.kind = kind
        self.label_names = _check_labels(label_names)
        self.buckets = buckets
        self._children: Dict[Tuple[str, ...], object] = {}
        if not label_names:
            self._default = self._make_child()
            self._children[()] = self._default
        else:
            self._default = None

    def _make_child(self):
        if self.kind == "histogram":
            return HistogramChild(self.buckets)
        return _CHILD_TYPES[self.kind]()

    def labels(self, **label_values: str):
        """The child series for one label-value assignment.

        Every declared label must be supplied (and nothing else); values
        are coerced to strings, matching Prometheus semantics.
        """
        if set(label_values) != set(self.label_names):
            raise ValueError(
                f"{self.name} expects labels {self.label_names}, "
                f"got {tuple(sorted(label_values))}"
            )
        key = tuple(str(label_values[name]) for name in self.label_names)
        child = self._children.get(key)
        if child is None:
            child = self._make_child()
            self._children[key] = child
        return child

    # Unlabelled families behave like their single child.
    def inc(self, amount: float = 1.0) -> None:
        self._require_default().inc(amount)

    def set(self, value: float) -> None:
        self._require_default().set(value)

    def dec(self, amount: float = 1.0) -> None:
        self._require_default().dec(amount)

    def observe(self, value: float) -> None:
        self._require_default().observe(value)

    def _require_default(self):
        if self._default is None:
            raise ValueError(
                f"{self.name} is labelled {self.label_names}; call .labels() first"
            )
        return self._default

    def samples(self) -> Iterable[Tuple[Tuple[str, ...], object]]:
        """(label values, child) pairs in insertion order."""
        return self._children.items()


class MetricsRegistry:
    """Process-local registry of metric families.

    ``counter`` / ``gauge`` / ``histogram`` are get-or-create: asking
    twice for the same name returns the same family (so independent
    subsystems can share ``campaign_outcomes_total``), but re-declaring
    a name with a different type, label set, or bucket layout raises.
    """

    #: Instrumented code may consult this to skip expensive preparation
    #: (wall-clock reads, string formatting) when telemetry is off.
    enabled = True

    def __init__(self) -> None:
        self._families: Dict[str, MetricFamily] = {}

    def _get_or_create(
        self,
        name: str,
        help_text: str,
        kind: str,
        label_names: Sequence[str],
        buckets: Tuple[float, ...] = (),
    ) -> MetricFamily:
        family = self._families.get(name)
        if family is not None:
            if family.kind != kind:
                raise ValueError(
                    f"{name} already registered as a {family.kind}, not {kind}"
                )
            if family.label_names != tuple(label_names):
                raise ValueError(
                    f"{name} already registered with labels {family.label_names}"
                )
            if kind == "histogram" and family.buckets != tuple(buckets):
                raise ValueError(f"{name} already registered with other buckets")
            return family
        family = MetricFamily(name, help_text, kind, tuple(label_names), buckets)
        self._families[name] = family
        return family

    def counter(
        self, name: str, help_text: str = "", labels: Sequence[str] = ()
    ) -> MetricFamily:
        """Get or create a counter family."""
        return self._get_or_create(name, help_text, "counter", labels)

    def gauge(
        self, name: str, help_text: str = "", labels: Sequence[str] = ()
    ) -> MetricFamily:
        """Get or create a gauge family."""
        return self._get_or_create(name, help_text, "gauge", labels)

    def histogram(
        self,
        name: str,
        help_text: str = "",
        labels: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> MetricFamily:
        """Get or create a histogram family over fixed bucket edges."""
        edges = tuple(sorted(float(edge) for edge in buckets))
        if not edges:
            raise ValueError("histograms need at least one bucket edge")
        return self._get_or_create(name, help_text, "histogram", labels, edges)

    def families(self) -> List[MetricFamily]:
        """Registered families in registration order."""
        return list(self._families.values())

    def get(self, name: str) -> Optional[MetricFamily]:
        """Look up a family by name (None when absent)."""
        return self._families.get(name)


def merge_registry(target: MetricsRegistry, source: MetricsRegistry) -> None:
    """Fold ``source``'s samples into ``target`` (sharded-campaign merge).

    Families are matched by name; a family absent from ``target`` is
    created with the source's declaration, and a family already present
    must agree on kind, label names, and bucket edges (the registry's
    usual re-declaration rules apply, so a mismatch raises).  Counter and
    gauge children add their values, histogram children add per-bucket
    counts, sums, and totals -- exactly the semantics of running the
    shards sequentially against one registry.
    """
    if isinstance(source, NullRegistry):
        return
    for family in source.families():
        merged = target._get_or_create(
            family.name, family.help, family.kind,
            family.label_names, family.buckets,
        )
        for label_values, child in family.samples():
            if family.label_names:
                labels = dict(zip(family.label_names, label_values))
                merged_child = merged.labels(**labels)
            else:
                merged_child = merged._require_default()
            if family.kind == "histogram":
                for slot, count in enumerate(child.counts):
                    merged_child.counts[slot] += count
                merged_child.sum += child.sum
                merged_child.count += child.count
            else:
                merged_child.value += child.value


class _NullSeries:
    """Shared no-op stand-in for families and children alike."""

    __slots__ = ()
    value = 0.0

    def labels(self, **_labels) -> "_NullSeries":
        return self

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass


_NULL_SERIES = _NullSeries()


class NullRegistry:
    """Zero-cost registry: every family is the shared no-op series."""

    enabled = False

    def counter(self, name: str, help_text: str = "", labels=()) -> _NullSeries:
        return _NULL_SERIES

    def gauge(self, name: str, help_text: str = "", labels=()) -> _NullSeries:
        return _NULL_SERIES

    def histogram(
        self, name: str, help_text: str = "", labels=(), buckets=DEFAULT_BUCKETS
    ) -> _NullSeries:
        return _NULL_SERIES

    def families(self) -> List[MetricFamily]:
        return []

    def get(self, name: str) -> None:
        return None
