"""Uniform per-line BCH ECC-t cache: the paper's strawman baseline.

Every line carries a t-error-correcting BCH code (t = 6 for the paper's
comparison point, costing 60 check bits and a multi-cycle decoder).  No
RAID, no SDR: a line with more than t faults is a DUE (or, if the
bounded-distance decoder lands inside another codeword's sphere, an SDC
-- the audit catches those).
"""

from __future__ import annotations

from typing import Optional

from repro.baselines.common import BaselineCache
from repro.coding.bch import BCH
from repro.core.outcomes import Outcome
from repro.sttram.array import STTRAMArray


class ECCLineCache(BaselineCache):
    """Cache protected by per-line ECC-t (BCH) only."""

    name = "ECC-t per line"

    def __init__(
        self,
        num_lines: int,
        t: int = 6,
        data_bits: int = 512,
        audit: bool = True,
        code: Optional[BCH] = None,
    ) -> None:
        self.code = code if code is not None else BCH(data_bits, t)
        if self.code.k != data_bits:
            raise ValueError("code payload width disagrees with data_bits")
        array = STTRAMArray(num_lines, self.code.n)
        super().__init__(array, data_bits, audit=audit)
        self.t = self.code.t
        self.name = f"ECC-{self.t} per line"
        self._format()

    def _format(self) -> None:
        self.array.fill_word(self.code.encode(0))

    def write_data(self, frame: int, data: int) -> None:
        """Encode and store a payload word."""
        self.array.write(frame, self.code.encode(data))

    def read_data(self, frame: int) -> tuple:
        """Demand read with correction; returns (data, outcome)."""
        outcome = self._resolve_line(frame)
        return self.code.extract_data(self.array.read(frame)), outcome

    def _resolve_line(self, frame: int) -> Outcome:
        word = self.array.read(frame)
        result = self.code.decode(word)
        if not result.ok:
            return Outcome.DUE
        if not result.error_positions:
            return Outcome.CLEAN
        self.array.restore(frame, result.corrected_word)
        return Outcome.CORRECTED_ECC1

    @property
    def storage_overhead_bits_per_line(self) -> float:
        """Check bits per line (60 for ECC-6)."""
        return float(self.code.num_check_bits)
