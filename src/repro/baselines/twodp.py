"""Two-Dimensional error coding (2DP) [18], optimised with ECC-1 + CRC-31.

2DP keeps a horizontal code per line and a vertical parity across the
lines of a region.  In Table XI's equal-resource configuration the
horizontal code is the SuDoku line format (ECC-1 + CRC-31) and the
vertical parity is one XOR line per 512-line region -- structurally
identical to a single-hash SuDoku with mismatch-guided bit repair, i.e.
SuDoku-Y.  The paper makes the same observation: 2DP's weakness is
precisely that both parity dimensions are built over the *same* set of
lines, which is the limitation SuDoku-Z's second hash removes.

The class therefore *is* a SuDoku-Y engine under a 2DP nameplate; keeping
it as a distinct type gives the benchmarks an honest label and a place to
document the equivalence.
"""

from __future__ import annotations

from repro.core.engine import SuDokuY


class TwoDPCache(SuDokuY):
    """2DP with ECC-1 + CRC-31 lines (single-region dual-dimension parity)."""

    name = "2DP + ECC-1 + CRC-31"
    level = "2DP"
