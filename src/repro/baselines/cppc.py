"""CPPC: Correctable Parity Protected Cache [17], with CRC-31 detection.

CPPC keeps lightweight per-line error *detection* and a single *global*
parity over the entire cache; when one line is flagged faulty, XORing the
global parity with every other line restores it.  Following Table XI's
setup, each line carries CRC-31 for detection (stronger than CPPC's
original per-line parity).

CPPC was designed for low fault rates (one faulty line at a time); at the
paper's BER thousands of lines fault per interval, so the global parity
is almost always over-subscribed -- which is exactly the comparison the
paper makes.
"""

from __future__ import annotations

from repro.baselines.common import BaselineCache
from repro.coding.crc import CRC31_SUDOKU
from repro.coding.parity import xor_reduce
from repro.core.outcomes import Outcome
from repro.sttram.array import STTRAMArray


class CPPCCache(BaselineCache):
    """Functional CPPC: CRC-31 per line + one global parity line."""

    name = "CPPC + CRC-31"

    def __init__(self, num_lines: int, data_bits: int = 512, audit: bool = True) -> None:
        if data_bits % 8:
            raise ValueError("data_bits must be a byte multiple")
        self.crc = CRC31_SUDOKU
        stored_bits = data_bits + self.crc.width
        array = STTRAMArray(num_lines, stored_bits)
        super().__init__(array, data_bits, audit=audit)
        self.global_parity = 0
        self._format()

    # -- line format: data || crc ----------------------------------------------------

    def _encode(self, data: int) -> int:
        return data | (self.crc.compute_int(data, self.data_bits) << self.data_bits)

    def _is_valid(self, word: int) -> bool:
        data = word & ((1 << self.data_bits) - 1)
        stored_crc = word >> self.data_bits
        return self.crc.compute_int(data, self.data_bits) == stored_crc

    def _format(self) -> None:
        zero_word = self._encode(0)
        self.array.fill_word(zero_word)
        # Global parity of N identical words is zero for even N, else the
        # word itself.
        self.global_parity = zero_word if self.array.num_lines % 2 else 0

    def write_data(self, frame: int, data: int) -> None:
        """Store a payload, folding old ^ new into the global parity."""
        new_word = self._encode(data)
        old_word = self.array.read(frame)
        self.array.write(frame, new_word)
        self.global_parity ^= old_word ^ new_word

    def read_data(self, frame: int) -> tuple:
        """Demand read with correction; returns (data, outcome)."""
        outcome = self._resolve_line(frame)
        word = self.array.read(frame)
        return word & ((1 << self.data_bits) - 1), outcome

    # -- correction ---------------------------------------------------------------------

    def _resolve_line(self, frame: int) -> Outcome:
        if self._is_valid(self.array.read(frame)):
            return Outcome.CLEAN
        # Invalid lines are a subset of the dirty set: clean lines hold
        # the last ``_encode`` output (``restore`` of the exact golden
        # word discards dirtiness), so scanning the sorted dirty frames
        # visits the same faulty lines as a full walk, in the same order.
        faulty = [
            index
            for index in self.array.dirty_frames()
            if not self._is_valid(self.array.read(index))
        ]
        if len(faulty) > 1:
            for other in faulty:
                if other != frame:
                    self._note(other, Outcome.DUE)
            return Outcome.DUE
        # XOR of every line except ``frame`` == XOR of all lines with
        # frame's word cancelled back out; the all-lines fold runs over
        # the array's bulk iterator instead of per-line reads.
        candidate = (
            self.global_parity ^ xor_reduce(self.array) ^ self.array.read(frame)
        )
        if not self._is_valid(candidate):
            return Outcome.DUE
        self.array.restore(frame, candidate)
        return Outcome.CORRECTED_RAID4

    @property
    def storage_overhead_bits_per_line(self) -> float:
        """CRC bits plus the amortised global parity."""
        return self.crc.width + self.array.line_bits / self.array.num_lines
