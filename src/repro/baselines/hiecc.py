"""Hi-ECC [71]: strong ECC at 1 KB granularity (Table XII).

Hi-ECC amortises ECC-6 over 1 KB regions instead of 64 B lines, cutting
the storage overhead to ~1 %.  The cost is that each codeword now covers
16x as many bits, so the six-error budget is consumed 16x as fast --
which is why its FIT trails SuDoku by orders of magnitude at the paper's
error rate.

The functional model stores one BCH codeword per 1 KB region (sixteen
64 B lines).  Writes re-encode the affected region; scrubs decode it.
The region payload is handled as a single wide bit-vector.
"""

from __future__ import annotations

from typing import Optional

from repro.baselines.common import BaselineCache
from repro.coding.bch import BCH
from repro.core.outcomes import Outcome
from repro.sttram.array import STTRAMArray


class HiECCCache(BaselineCache):
    """ECC-t over multi-line regions (one array line per region)."""

    name = "Hi-ECC"

    def __init__(
        self,
        num_regions: int,
        region_bytes: int = 1024,
        t: int = 6,
        audit: bool = True,
        code: Optional[BCH] = None,
    ) -> None:
        data_bits = region_bytes * 8
        self.code = code if code is not None else BCH(data_bits, t)
        if self.code.k != data_bits:
            raise ValueError("code payload width disagrees with region size")
        array = STTRAMArray(num_regions, self.code.n)
        super().__init__(array, data_bits, audit=audit)
        self.region_bytes = region_bytes
        self.t = self.code.t
        self.name = f"Hi-ECC (ECC-{self.t} @ {region_bytes}B)"
        self._format()

    def _format(self) -> None:
        self.array.fill_word(self.code.encode(0))

    def write_data(self, region: int, data: int) -> None:
        """Write a whole region payload (re-encoding the codeword)."""
        self.array.write(region, self.code.encode(data))

    def write_line(self, region: int, line_offset: int, line_data: int, line_bits: int = 512) -> None:
        """Update one cache-line-sized slice of a region.

        Models the read-modify-write a real Hi-ECC controller performs:
        the whole region is decoded, the slice replaced, and the region
        re-encoded.
        """
        if line_data < 0 or line_data >> line_bits:
            raise ValueError("line data out of range")
        current = self.code.extract_data(self.array.read(region))
        shift = line_offset * line_bits
        mask = ((1 << line_bits) - 1) << shift
        updated = (current & ~mask) | (line_data << shift)
        self.write_data(region, updated)

    def read_data(self, region: int) -> tuple:
        """Demand read with correction; returns (payload, outcome)."""
        outcome = self._resolve_line(region)
        return self.code.extract_data(self.array.read(region)), outcome

    def _resolve_line(self, region: int) -> Outcome:
        result = self.code.decode(self.array.read(region))
        if not result.ok:
            return Outcome.DUE
        if not result.error_positions:
            return Outcome.CLEAN
        self.array.restore(region, result.corrected_word)
        return Outcome.CORRECTED_ECC1

    @property
    def storage_overhead_bits_per_line(self) -> float:
        """Check bits amortised over the 64 B lines of a region."""
        lines_per_region = self.region_bytes // 64
        return self.code.num_check_bits / lines_per_region
