"""RAID-6-style dual-parity regions: row parity plus diagonal parity.

Each RAID-Group keeps two parity lines (Table XI grants the baselines the
same parity budget as SuDoku-Z's two PLTs):

* the **row parity** is the plain XOR of the member lines (as in RAID-4);
* the **diagonal parity** is the XOR of the member lines, each rotated
  left by its group position, i.e. parity along wrapping diagonals of the
  (line x bit) matrix.

With the per-line CRC pinpointing *which* lines are corrupt, recovering
two lines is erasure decoding: the row parity yields ``Di ^ Dj`` and the
diagonal parity a rotated combination; eliminating one unknown leaves a
relation ``Di[x] ^ Di[x - s] = C[x]`` that chains around cycles of length
``w / gcd(s, w)``.  XOR around a full cycle is constraint-free, so each
cycle admits two assignments -- the per-line CRC arbitrates.  (Production
RAID-6 sidesteps the ambiguity with prime-length diagonals; for a 553-bit
line the CRC check is the simpler, and equally effective, tiebreaker.
When a pair's cycle structure leaves too many assignments to try, the
pair is declared uncorrectable -- a rarity accounted in EXPERIMENTS.md.)

Lines also carry ECC-1 + CRC-31 (the SuDoku line format) so single-bit
faults never consume an erasure.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional

from repro.baselines.common import BaselineCache
from repro.coding.bitvec import mask_of
from repro.coding.parity import xor_reduce
from repro.core.grouping import GroupMapper
from repro.core.linecodec import DecodeStatus, LineCodec
from repro.core.outcomes import Outcome
from repro.sttram.array import STTRAMArray

#: Give up on two-erasure recovery beyond this many candidate assignments.
MAX_CYCLE_COMBINATIONS = 256


def rotate_left(value: int, shift: int, width: int) -> int:
    """Rotate a ``width``-bit value left by ``shift``."""
    shift %= width
    if shift == 0:
        return value
    return ((value << shift) | (value >> (width - shift))) & mask_of(width)


def rotate_right(value: int, shift: int, width: int) -> int:
    """Rotate a ``width``-bit value right by ``shift``."""
    return rotate_left(value, width - (shift % width), width)


class RAID6Cache(BaselineCache):
    """Dual-parity (row + diagonal) regions with ECC-1 + CRC-31 lines."""

    name = "RAID-6 + CRC-31"

    def __init__(
        self,
        num_lines: int,
        group_size: int = 512,
        audit: bool = True,
        codec: Optional[LineCodec] = None,
    ) -> None:
        self.codec = codec if codec is not None else LineCodec()
        array = STTRAMArray(num_lines, self.codec.stored_bits)
        super().__init__(array, self.codec.layout.data_bits, audit=audit)
        self.group_size = group_size
        self.mapper = GroupMapper(num_lines, group_size)
        self.row_parity: List[int] = [0] * self.mapper.num_groups
        self.diag_parity: List[int] = [0] * self.mapper.num_groups
        self._format()

    def _format(self) -> None:
        zero_word = self.codec.encode(0)
        self.array.fill_word(zero_word)
        width = self.array.line_bits
        for group in range(self.mapper.num_groups):
            members = self.mapper.members(group)
            self.row_parity[group] = xor_reduce(
                self.array.read(f) for f in members
            )
            self.diag_parity[group] = xor_reduce(
                rotate_left(self.array.read(f), position, width)
                for position, f in enumerate(members)
            )

    def write_data(self, frame: int, data: int) -> None:
        """Store a payload, updating both parities incrementally."""
        new_word = self.codec.encode(data)
        old_word = self.array.read(frame)
        self.array.write(frame, new_word)
        group = self.mapper.group_of(frame)
        position = frame - self.mapper.members(group)[0]
        delta = old_word ^ new_word
        self.row_parity[group] ^= delta
        self.diag_parity[group] ^= rotate_left(
            delta, position, self.array.line_bits
        )

    def read_data(self, frame: int) -> tuple:
        """Demand read with correction; returns (data, outcome)."""
        outcome = self._resolve_line(frame)
        return self.codec.extract_data(self.array.read(frame)), outcome

    # -- correction -----------------------------------------------------------------------

    def _resolve_line(self, frame: int) -> Outcome:
        decode = self.codec.decode(self.array.read(frame))
        if decode.status is DecodeStatus.CLEAN:
            return Outcome.CLEAN
        if decode.status is DecodeStatus.CORRECTED:
            self.array.restore(frame, decode.word)
            return Outcome.CORRECTED_ECC1
        outcomes = self._repair_group(self.mapper.group_of(frame))
        outcome = outcomes.pop(frame, Outcome.DUE)
        for other, other_outcome in outcomes.items():
            self._note(other, other_outcome)
        return outcome

    def _repair_group(self, group: int) -> Dict[int, Outcome]:
        members = self.mapper.members(group)
        words: Dict[int, int] = {}
        outcomes: Dict[int, Outcome] = {}
        uncorrectable: List[int] = []
        for member in members:
            decode = self.codec.decode(self.array.read(member))
            if decode.status is DecodeStatus.CORRECTED:
                self.array.restore(member, decode.word)
                outcomes[member] = Outcome.CORRECTED_ECC1
            elif decode.status is DecodeStatus.UNCORRECTABLE:
                uncorrectable.append(member)
            words[member] = decode.word if decode.ok else self.array.read(member)

        if len(uncorrectable) == 1:
            if self._recover_one(group, members, words, uncorrectable[0]):
                outcomes[uncorrectable[0]] = Outcome.CORRECTED_RAID4
            else:
                outcomes[uncorrectable[0]] = Outcome.DUE
        elif len(uncorrectable) == 2:
            if self._recover_two(group, members, words, *uncorrectable):
                outcomes[uncorrectable[0]] = Outcome.CORRECTED_RAID4
                outcomes[uncorrectable[1]] = Outcome.CORRECTED_RAID4
            else:
                outcomes[uncorrectable[0]] = Outcome.DUE
                outcomes[uncorrectable[1]] = Outcome.DUE
        elif len(uncorrectable) > 2:
            for member in uncorrectable:
                outcomes[member] = Outcome.DUE
        return outcomes

    def _recover_one(
        self, group: int, members: List[int], words: Dict[int, int], target: int
    ) -> bool:
        candidate = self.row_parity[group] ^ xor_reduce(
            words[m] for m in members if m != target
        )
        if self.codec.decode(candidate).status is not DecodeStatus.CLEAN:
            return False
        self.array.restore(target, candidate)
        words[target] = candidate
        return True

    def _recover_two(
        self,
        group: int,
        members: List[int],
        words: Dict[int, int],
        frame_i: int,
        frame_j: int,
    ) -> bool:
        """Two-erasure recovery via the row/diagonal linear system."""
        width = self.array.line_bits
        base = members[0]
        pos_i, pos_j = frame_i - base, frame_j - base
        # Row deficit: Di ^ Dj.
        row = self.row_parity[group] ^ xor_reduce(
            words[m] for m in members if m not in (frame_i, frame_j)
        )
        # Diagonal deficit: rot(Di, pos_i) ^ rot(Dj, pos_j).
        diag = self.diag_parity[group] ^ xor_reduce(
            rotate_left(words[m], m - base, width)
            for m in members
            if m not in (frame_i, frame_j)
        )
        # Substitute Dj = row ^ Di:
        #   rot(Di, pos_i) ^ rot(Di, pos_j) = diag ^ rot(row, pos_j) =: C
        # In un-rotated coordinates: Di[x] ^ Di[x - s] = C[x + pos_i] with
        # s = pos_j - pos_i; chains around cycles of length width/gcd.
        stride = (pos_j - pos_i) % width
        constant = rotate_right(diag ^ rotate_left(row, pos_j, width), pos_i, width)
        cycles = math.gcd(stride, width)
        if 1 << cycles > MAX_CYCLE_COMBINATIONS:
            return False
        solution = self._solve_cycles(constant, stride, width, cycles, row)
        if solution is None:
            return False
        candidate_i, candidate_j = solution
        self.array.restore(frame_i, candidate_i)
        self.array.restore(frame_j, candidate_j)
        words[frame_i] = candidate_i
        words[frame_j] = candidate_j
        return True

    def _solve_cycles(
        self, constant: int, stride: int, width: int, cycles: int, row: int
    ) -> Optional[tuple]:
        """Enumerate cycle seed assignments, CRC-checking each candidate."""
        # Each cycle starts at one of `cycles` residues; walking x -> x+s
        # determines all bits from the seed bit via Di[x+s] = Di[x] ^ C[x+s].
        for assignment in range(1 << cycles):
            candidate = 0
            for cycle_index in range(cycles):
                bit = (assignment >> cycle_index) & 1
                x = cycle_index
                for _ in range(width // cycles):
                    if bit:
                        candidate |= 1 << x
                    next_x = (x + stride) % width
                    bit ^= (constant >> next_x) & 1
                    x = next_x
            partner = row ^ candidate
            if (
                self.codec.decode(candidate).status is DecodeStatus.CLEAN
                and self.codec.decode(partner).status is DecodeStatus.CLEAN
            ):
                return candidate, partner
        return None

    @property
    def storage_overhead_bits_per_line(self) -> float:
        """CRC + ECC bits plus the two amortised parity lines per group."""
        return (
            self.codec.layout.overhead_bits
            + 2.0 * self.array.line_bits / self.group_size
        )
