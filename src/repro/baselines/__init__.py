"""Functional implementations of the paper's comparison schemes.

Each baseline protects the same :class:`repro.sttram.array.STTRAMArray`
abstraction and exposes the same scrub-campaign interface as the SuDoku
engines (``write_data`` / ``scrub_frames`` / ``data_bits``), so the
Monte-Carlo harness of :mod:`repro.reliability.montecarlo` drives all of
them identically.

* :mod:`repro.baselines.eccline` -- uniform per-line BCH ECC-t (the
  paper's main strawman at t = 6).
* :mod:`repro.baselines.cppc` -- Correctable Parity Protected Cache [17].
* :mod:`repro.baselines.raid6` -- row + diagonal dual-parity regions.
* :mod:`repro.baselines.twodp` -- two-dimensional error coding [18].
* :mod:`repro.baselines.hiecc` -- ECC-6 at 1 KB granularity [71].
"""

from repro.baselines.eccline import ECCLineCache
from repro.baselines.cppc import CPPCCache
from repro.baselines.raid6 import RAID6Cache
from repro.baselines.twodp import TwoDPCache
from repro.baselines.hiecc import HiECCCache

__all__ = [
    "ECCLineCache",
    "CPPCCache",
    "RAID6Cache",
    "TwoDPCache",
    "HiECCCache",
]
