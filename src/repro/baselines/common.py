"""Shared machinery for the baseline protection schemes.

:class:`BaselineCache` provides the campaign-facing surface (outcome
recording with golden-copy auditing, the ``scrub_frames`` walk and its
pending-outcome bookkeeping) so each concrete baseline only implements
``write_data`` and ``_resolve_line``.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Iterable, Optional, Union

from repro.core.outcomes import Outcome
from repro.kernels import KernelBackend, resolve_backend
from repro.sttram.array import STTRAMArray


class BaselineCache:
    """Base class for campaign-compatible protection schemes."""

    #: Human-readable scheme name; subclasses override.
    name = "baseline"

    def __init__(
        self,
        array: STTRAMArray,
        data_bits: int,
        audit: bool = True,
        backend: Optional[Union[str, KernelBackend]] = None,
    ) -> None:
        if data_bits <= 0:
            raise ValueError("data_bits must be positive")
        self.array = array
        self.data_bits = data_bits
        self.audit = audit
        self.backend = resolve_backend(backend)
        self.outcome_counts: Counter = Counter()
        self._pending: Dict[int, Outcome] = {}

    def set_backend(self, backend: Union[str, KernelBackend]) -> None:
        """Swap the kernel backend (per-line resolution is scheme-opaque,
        so only the bulk dirty-population reduction routes through it)."""
        self.backend = resolve_backend(backend)

    # -- interface subclasses implement ------------------------------------------

    def write_data(self, frame: int, data: int) -> None:
        """Encode and store a payload."""
        raise NotImplementedError

    def _resolve_line(self, frame: int) -> Outcome:
        """Inspect and (if possible) repair one line."""
        raise NotImplementedError

    # -- campaign surface (mirrors SuDokuEngine) --------------------------------------

    def begin_scrub_pass(self) -> None:
        """Reset per-pass caches."""
        self._pending.clear()

    def scrub_line(self, frame: int) -> str:
        """Resolve one line and return its outcome label."""
        outcome = self._pending.pop(frame, None)
        if outcome is None:
            outcome = self._resolve_line(frame)
        outcome = self._audit(frame, outcome)
        self.outcome_counts[outcome.value] += 1
        return outcome.value

    def scrub_frames(self, frames: Iterable[int]) -> Dict[str, int]:
        """Scrub a set of frames, draining collateral outcomes."""
        self.begin_scrub_pass()
        counts: Counter = Counter()
        for frame in frames:
            counts[self.scrub_line(frame)] += 1
        for frame, outcome in list(self._pending.items()):
            audited = self._audit(frame, outcome)
            self.outcome_counts[audited.value] += 1
            counts[audited.value] += 1
        self._pending.clear()
        return dict(counts)

    def scrub_all(self) -> Dict[str, int]:
        """Scrub every frame."""
        return self.scrub_frames(range(self.array.num_lines))

    def scrub_sparse(self) -> Dict[str, int]:
        """Fault-indexed scrub (mirrors ``SuDokuEngine.scrub_sparse``).

        Decodes only the array's dirty frames and bulk-accounts every
        other line as ``clean``; outcome counters are bit-identical to
        :meth:`scrub_all` because clean frames hold valid codewords and
        resolve to ``clean`` without side effects.
        """
        counts = Counter(self.scrub_frames(self.array.dirty_frames()))
        counts[Outcome.CLEAN.value] += self.account_bulk_clean(
            self.array.num_lines - sum(counts.values())
        )
        return dict(counts)

    def account_bulk_clean(self, count: int) -> int:
        """Record ``count`` known-clean lines without decoding them."""
        if count < 0:
            raise ValueError("bulk clean count cannot be negative")
        self.outcome_counts[Outcome.CLEAN.value] += count
        return count

    def _note(self, frame: int, outcome: Outcome) -> None:
        """Record a collateral outcome for a frame not yet visited."""
        self._pending.setdefault(frame, outcome)

    def _audit(self, frame: int, outcome: Outcome) -> Outcome:
        if not self.audit or outcome is Outcome.DUE:
            return outcome
        if self.array.is_clean(frame):
            return outcome
        return Outcome.SDC
