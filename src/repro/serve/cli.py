"""``repro serve`` subcommand: flags and entry point.

Kept separate from :mod:`repro.cli` (like lint and bench) so the main
CLI only imports the service stack when the subcommand actually runs.
"""

from __future__ import annotations

import argparse
import asyncio
import sys


def configure_serve_parser(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--host", default="127.0.0.1",
        help="interface to bind (default 127.0.0.1)",
    )
    parser.add_argument(
        "--port", type=int, default=8642,
        help="TCP port; 0 binds an ephemeral port (default 8642)",
    )
    parser.add_argument(
        "--store-dir", required=True,
        help="content-addressed result store root",
    )
    parser.add_argument(
        "--checkpoint-dir", required=True,
        help="directory for per-job checkpoint files (resume on restart)",
    )
    parser.add_argument(
        "--workers", type=int, default=2,
        help="concurrent job subprocesses (default 2)",
    )
    parser.add_argument(
        "--checkpoint-every", type=int, default=25,
        help="checkpoint flush cadence in work units (default 25)",
    )
    parser.add_argument(
        "--drain-grace-s", type=float, default=10.0,
        help="seconds to wait for running jobs to reach a trial "
             "boundary on SIGTERM (default 10)",
    )
    parser.add_argument(
        "--ready-file", default="",
        help="write {host, port} JSON here once listening (for scripts "
             "binding --port 0)",
    )


def run_serve_command(args: argparse.Namespace) -> int:
    from repro.serve.app import ServeApp

    if args.workers < 1:
        print("repro: error: --workers must be >= 1", file=sys.stderr)
        return 2
    app = ServeApp(
        store_dir=args.store_dir,
        checkpoint_dir=args.checkpoint_dir,
        workers=args.workers,
        checkpoint_every=args.checkpoint_every,
        drain_grace_s=args.drain_grace_s,
    )
    print(
        f"repro serve: listening on {args.host}:{args.port} "
        f"(store={args.store_dir}, checkpoints={args.checkpoint_dir})",
        file=sys.stderr,
    )
    asyncio.run(
        app.run(args.host, args.port, ready_file=args.ready_file)
    )
    print("repro serve: drained, exiting", file=sys.stderr)
    return 0
