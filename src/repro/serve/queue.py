"""Priority + per-tenant fair-share job queue with lease semantics.

Scheduling is two-level: jobs first bucket by priority (higher wins),
then within a bucket tenants take turns round-robin, each contributing
its oldest job.  One tenant enqueueing a thousand campaigns therefore
delays a second tenant by at most one job, regardless of arrival order.

``claim``/``complete``/``fail``/``release`` form a lease protocol: a
claimed job is owned by a named worker until completed, failed, or
released back to the front of its tenant's line.  The in-process
scheduler is simply the first lease holder; the fleet-scale roadmap
item plugs remote pullers into the same four calls.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional


@dataclass
class QueuedJob:
    """One queue entry; ``payload`` is opaque to the queue."""

    job_id: str
    digest: str
    tenant: str
    priority: int
    payload: object = None
    seq: int = 0
    worker: str = field(default="", init=False)  # lease holder when claimed


class FairShareQueue:
    """Priority buckets of per-tenant FIFO lines, drained round-robin."""

    def __init__(self) -> None:
        # priority -> tenant -> FIFO of jobs; plus the rotation order of
        # tenants inside each priority bucket.
        self._lines: Dict[int, Dict[str, Deque[QueuedJob]]] = {}
        self._rotation: Dict[int, Deque[str]] = {}
        self._leased: Dict[str, QueuedJob] = {}
        self._seq = 0

    # -- enqueue ------------------------------------------------------------------

    def push(self, job: QueuedJob) -> None:
        """Append ``job`` to its tenant's line."""
        self._seq += 1
        job.seq = self._seq
        bucket = self._lines.setdefault(job.priority, {})
        line = bucket.get(job.tenant)
        if line is None:
            line = bucket[job.tenant] = deque()
            self._rotation.setdefault(job.priority, deque()).append(
                job.tenant
            )
        line.append(job)

    # -- lease protocol -----------------------------------------------------------

    def claim(self, worker: str = "local") -> Optional[QueuedJob]:
        """Lease the next job to ``worker`` (None when empty).

        Highest priority bucket first; within it, the tenant at the
        front of the rotation contributes its oldest job and moves to
        the back (if it still has queued work).
        """
        for priority in sorted(self._lines, reverse=True):
            rotation = self._rotation[priority]
            bucket = self._lines[priority]
            while rotation:
                tenant = rotation[0]
                line = bucket.get(tenant)
                if not line:
                    # Tenant drained: drop it from the rotation.
                    rotation.popleft()
                    bucket.pop(tenant, None)
                    continue
                job = line.popleft()
                rotation.rotate(-1)
                if not line:
                    # Contributed its last job: retire from rotation.
                    bucket.pop(tenant, None)
                    rotation.remove(tenant)
                job.worker = worker
                self._leased[job.job_id] = job
                return job
            # Bucket empty: clean it up and fall through to the next.
            self._lines.pop(priority, None)
            self._rotation.pop(priority, None)
        return None

    def complete(self, job_id: str) -> None:
        """Release the lease on a finished (or failed) job."""
        self._leased.pop(job_id, None)

    fail = complete  # same queue-side effect; outcome lives on the job

    def release(self, job_id: str) -> None:
        """Return a leased job to the *front* of its tenant's line.

        Used when a worker dies or the server drains mid-claim: the job
        keeps its place rather than going to the back of the queue.
        """
        job = self._leased.pop(job_id, None)
        if job is None:
            return
        job.worker = ""
        bucket = self._lines.setdefault(job.priority, {})
        line = bucket.get(job.tenant)
        if line is None:
            line = bucket[job.tenant] = deque()
            self._rotation.setdefault(job.priority, deque()).appendleft(
                job.tenant
            )
        line.appendleft(job)

    # -- introspection ------------------------------------------------------------

    def pending(self) -> int:
        return sum(
            len(line)
            for bucket in self._lines.values()
            for line in bucket.values()
        )

    def leased(self) -> int:
        return len(self._leased)

    def __len__(self) -> int:
        return self.pending()

    def snapshot(self) -> List[Dict[str, object]]:
        """Queued jobs in claim order (for GET /v1/jobs and tests)."""
        entries: List[Dict[str, object]] = []
        for priority in sorted(self._lines, reverse=True):
            for tenant, line in sorted(self._lines[priority].items()):
                for job in line:
                    entries.append(
                        {
                            "job_id": job.job_id,
                            "digest": job.digest,
                            "tenant": tenant,
                            "priority": priority,
                        }
                    )
        return entries
