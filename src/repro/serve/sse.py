"""Server-Sent-Events wire formatting.

One tiny, dependency-free encoder: ``text/event-stream`` frames are
``event:`` + ``data:`` lines terminated by a blank line.  Data is a
single JSON object per event, so consumers never need multi-line
``data:`` reassembly.
"""

from __future__ import annotations

import json
from typing import Dict

#: Response headers for an SSE stream (HTTP/1.1, connection-per-stream).
SSE_HEADERS = {
    "Content-Type": "text/event-stream; charset=utf-8",
    "Cache-Control": "no-store",
    "Connection": "close",
}


def format_event(event: str, data: Dict[str, object]) -> bytes:
    """Encode one SSE frame: ``event: <name>\\ndata: <json>\\n\\n``."""
    if "\n" in event or "\r" in event:
        raise ValueError(f"invalid SSE event name {event!r}")
    payload = json.dumps(data, sort_keys=True, separators=(",", ":"))
    return f"event: {event}\ndata: {payload}\n\n".encode("utf-8")


def format_comment(text: str = "keepalive") -> bytes:
    """An SSE comment frame (ignored by clients, keeps proxies awake)."""
    return f": {text}\n\n".encode("utf-8")
