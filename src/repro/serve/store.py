"""Content-addressed result store.

Completed campaign results are filed under their spec digest with a
two-character fan-out (``<root>/ab/abcdef....json``), written atomically
through :mod:`repro.obs.atomicio` so a crash mid-write can never leave a
corrupt entry.  Records contain no timestamps or other volatile fields,
and :meth:`ResultStore.put` serializes them exactly the way
``atomic_write_json`` does, so the bytes handed back for a store hit are
identical to the bytes written on the original miss -- the byte-identity
property the dedup acceptance test pins.

The interface is deliberately path-shaped (digest in, bytes out) so a
future fleet deployment can put the same records behind an object store
without touching the scheduler.
"""

from __future__ import annotations

import json
import os
from typing import Dict, Iterator, Optional

from repro.obs.atomicio import atomic_write_text

_HEX = frozenset("0123456789abcdef")


class ResultStore:
    """Digest-keyed storage of completed result records."""

    def __init__(self, root: str) -> None:
        if not root:
            raise ValueError("store root must be non-empty")
        self.root = root

    # -- layout -------------------------------------------------------------------

    @staticmethod
    def _validate(digest: str) -> str:
        if len(digest) < 3 or not set(digest) <= _HEX:
            raise ValueError(f"invalid result digest {digest!r}")
        return digest

    def path(self, digest: str) -> str:
        digest = self._validate(digest)
        return os.path.join(self.root, digest[:2], f"{digest}.json")

    # -- access -------------------------------------------------------------------

    def has(self, digest: str) -> bool:
        return os.path.exists(self.path(digest))

    def get_bytes(self, digest: str) -> Optional[bytes]:
        """The stored record verbatim, or None on a miss."""
        try:
            with open(self.path(digest), "rb") as handle:
                return handle.read()
        except FileNotFoundError:
            return None

    def get(self, digest: str) -> Optional[Dict[str, object]]:
        raw = self.get_bytes(digest)
        return None if raw is None else json.loads(raw.decode("utf-8"))

    def put(self, digest: str, record: Dict[str, object]) -> bytes:
        """Store ``record`` under ``digest``; returns the stored bytes.

        Serialization matches ``atomic_write_json`` (sorted keys,
        2-space indent, trailing newline) byte for byte, so re-reading
        the entry returns exactly what this call returns.
        """
        path = self.path(digest)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        text = json.dumps(record, indent=2, sort_keys=True, default=str) + "\n"
        atomic_write_text(path, text)
        return text.encode("utf-8")

    def digests(self) -> Iterator[str]:
        """Every stored digest (no particular order guarantees)."""
        if not os.path.isdir(self.root):
            return
        for shard in sorted(os.listdir(self.root)):
            shard_dir = os.path.join(self.root, shard)
            if not os.path.isdir(shard_dir):
                continue
            for name in sorted(os.listdir(shard_dir)):
                if name.endswith(".json"):
                    yield name[: -len(".json")]

    def __len__(self) -> int:
        return sum(1 for _ in self.digests())
