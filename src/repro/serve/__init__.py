"""repro.serve -- campaign-as-a-service.

The long-running job service the ROADMAP's north star asks for: accept
campaign/raresim/scenario specs as JSON over HTTP, schedule them across
a bounded worker pool of subprocesses running the sharded executors,
stream per-job progress and metrics over SSE, and land every completed
result in a content-addressed store keyed by the canonical digest of
``(normalized spec, seed, RESULT_VERSION)``.

Because seeded campaigns are bit-reproducible by construction, the
store doubles as a dedup cache: resubmitting an identical (spec, seed)
returns the stored result byte for byte without simulating a single
trial.  See docs/serving.md for the API and semantics.

Layering (each importable without the layers above it):

* :mod:`repro.serve.specs` -- spec validation, normalization, digests.
* :mod:`repro.serve.store` -- the content-addressed result store.
* :mod:`repro.serve.queue` -- priority + per-tenant fair-share queue
  with lease/claim semantics (designed for remote pullers).
* :mod:`repro.serve.scheduler` -- the bounded worker pool, per-job
  checkpoint/resume, cancellation, and drain.
* :mod:`repro.serve.sse` -- Server-Sent-Events wire formatting.
* :mod:`repro.serve.app` -- the asyncio HTTP front end
  (``python -m repro serve``).
"""

from repro.serve.queue import FairShareQueue, QueuedJob
from repro.serve.specs import (
    RESULT_VERSION,
    JobSpec,
    SpecError,
    parse_submission,
)
from repro.serve.store import ResultStore

__all__ = [
    "RESULT_VERSION",
    "JobSpec",
    "SpecError",
    "parse_submission",
    "ResultStore",
    "FairShareQueue",
    "QueuedJob",
]
