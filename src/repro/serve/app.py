"""The campaign service: a stdlib-only asyncio HTTP/1.1 front end.

Routes (all JSON; connections are one-shot, ``Connection: close``):

* ``POST /v1/jobs`` -- submit a campaign/raresim/scenario spec (bare or
  ``{"spec": ..., "tenant": ..., "priority": ...}`` envelope).  Returns
  the job record; a content-store hit comes back ``cached: true`` with
  zero new simulation scheduled, and a duplicate of an in-flight job
  joins it instead of re-running.
* ``GET /v1/jobs`` -- all jobs plus the queue snapshot.
* ``GET /v1/jobs/<id>`` -- one job record.
* ``DELETE /v1/jobs/<id>`` -- request cancellation of a running job.
* ``GET /v1/jobs/<id>/events`` -- Server-Sent Events: the job's event
  history replayed, then live ``progress``/``metrics`` frames until a
  terminal ``done``/``failed``/``cancelled`` event.
* ``GET /v1/results/<digest>`` -- the stored result record, byte-for-
  byte as written (the dedup acceptance test compares these bodies).
* ``GET /healthz``, ``GET /metrics`` -- liveness and the server's
  :class:`MetricsRegistry` snapshot.

SIGTERM/SIGINT trigger a graceful drain: stop claiming, cancel running
jobs (they stop at a trial boundary and flush checkpoints), then exit.
Because the result store writes atomically and checkpoints survive, a
killed server restarted on the same directories resumes interrupted
jobs on resubmission and never serves a torn result.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
from typing import Dict, Optional, Tuple

from repro.obs import MetricsRegistry
from repro.obs.atomicio import atomic_write_text
from repro.serve.scheduler import TERMINAL_STATES, Job, Scheduler
from repro.serve.specs import SpecError
from repro.serve.sse import SSE_HEADERS, format_comment, format_event
from repro.serve.store import ResultStore

_MAX_BODY = 1 << 20  # 1 MiB of JSON is far beyond any legitimate spec
_SSE_KEEPALIVE_S = 15.0


class ServeApp:
    """Wires the scheduler to an asyncio socket server."""

    def __init__(
        self,
        store_dir: str,
        checkpoint_dir: str,
        workers: int = 2,
        checkpoint_every: int = 25,
        drain_grace_s: float = 10.0,
    ) -> None:
        self.metrics = MetricsRegistry()
        self.store = ResultStore(store_dir)
        self.scheduler = Scheduler(
            store=self.store,
            checkpoint_dir=checkpoint_dir,
            workers=workers,
            checkpoint_every=checkpoint_every,
            metrics=self.metrics,
        )
        self.drain_grace_s = drain_grace_s
        self.stop_event = asyncio.Event()
        self._server: Optional[asyncio.base_events.Server] = None

    # -- lifecycle ----------------------------------------------------------------

    async def start(self, host: str, port: int) -> Tuple[str, int]:
        """Bind and start serving; returns the bound (host, port)."""
        os.makedirs(self.store.root, exist_ok=True)
        os.makedirs(self.scheduler.checkpoint_dir, exist_ok=True)
        self._server = await asyncio.start_server(
            self._handle_connection, host=host, port=port
        )
        bound = self._server.sockets[0].getsockname()
        return bound[0], bound[1]

    async def run(
        self,
        host: str,
        port: int,
        ready_file: str = "",
        install_signal_handlers: bool = True,
    ) -> None:
        """Serve until SIGTERM/SIGINT, then drain and exit."""
        bound_host, bound_port = await self.start(host, port)
        if install_signal_handlers:
            loop = asyncio.get_running_loop()
            for signum in (signal.SIGTERM, signal.SIGINT):
                loop.add_signal_handler(signum, self.stop_event.set)
        if ready_file:
            parent = os.path.dirname(ready_file)
            if parent:
                os.makedirs(parent, exist_ok=True)
            atomic_write_text(
                ready_file,
                json.dumps({"host": bound_host, "port": bound_port}) + "\n",
            )
        scheduler_task = asyncio.create_task(
            self.scheduler.run(self.stop_event)
        )
        await self.stop_event.wait()
        # Drain: no new claims, cancel in-flight, wait for checkpoints.
        assert self._server is not None
        self._server.close()
        await self.scheduler.drain(self.drain_grace_s)
        await scheduler_task
        await self._server.wait_closed()

    # -- HTTP plumbing ------------------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            await self._handle_request(reader, writer)
        except (
            ConnectionError,
            asyncio.IncompleteReadError,
            asyncio.LimitOverrunError,
        ):
            pass  # client went away mid-request/-response
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except ConnectionError:
                pass

    async def _handle_request(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        request_line = (await reader.readline()).decode("latin-1").strip()
        if not request_line:
            return
        parts = request_line.split()
        if len(parts) != 3:
            await self._send_json(writer, 400, {"error": "malformed request"})
            return
        method, target, _version = parts
        headers: Dict[str, str] = {}
        while True:
            line = (await reader.readline()).decode("latin-1").rstrip("\r\n")
            if not line:
                break
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        body = b""
        length = int(headers.get("content-length", "0") or "0")
        if length > _MAX_BODY:
            await self._send_json(writer, 413, {"error": "body too large"})
            return
        if length:
            body = await reader.readexactly(length)
        await self._route(writer, method, target.split("?", 1)[0], body)

    async def _send(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        body: bytes,
        headers: Dict[str, str],
    ) -> None:
        reason = {
            200: "OK", 202: "Accepted", 400: "Bad Request",
            404: "Not Found", 405: "Method Not Allowed",
            409: "Conflict", 413: "Payload Too Large",
            503: "Service Unavailable",
        }.get(status, "OK")
        lines = [f"HTTP/1.1 {status} {reason}"]
        merged = {"Connection": "close", "Content-Length": str(len(body))}
        merged.update(headers)
        for name, value in merged.items():
            lines.append(f"{name}: {value}")
        writer.write(("\r\n".join(lines) + "\r\n\r\n").encode("latin-1"))
        writer.write(body)
        await writer.drain()

    async def _send_json(
        self, writer: asyncio.StreamWriter, status: int, payload: object
    ) -> None:
        body = (
            json.dumps(payload, sort_keys=True, indent=2, default=str) + "\n"
        ).encode("utf-8")
        await self._send(
            writer, status, body,
            {"Content-Type": "application/json; charset=utf-8"},
        )

    # -- routing ------------------------------------------------------------------

    async def _route(
        self,
        writer: asyncio.StreamWriter,
        method: str,
        path: str,
        body: bytes,
    ) -> None:
        if path == "/healthz" and method == "GET":
            await self._send_json(
                writer, 200,
                {"status": "ok", "draining": self.scheduler.draining},
            )
            return
        if path == "/metrics" and method == "GET":
            from repro.obs.export import metrics_snapshot

            await self._send_json(
                writer, 200, {"series": metrics_snapshot(self.metrics)}
            )
            return
        if path == "/v1/jobs" and method == "POST":
            await self._submit(writer, body)
            return
        if path == "/v1/jobs" and method == "GET":
            await self._send_json(
                writer, 200,
                {
                    "jobs": [
                        job.as_dict()
                        for job in self.scheduler.jobs.values()
                    ],
                    "queue": self.scheduler.queue.snapshot(),
                },
            )
            return
        if path.startswith("/v1/jobs/"):
            await self._job_route(writer, method, path)
            return
        if path.startswith("/v1/results/") and method == "GET":
            digest = path[len("/v1/results/"):]
            try:
                raw = self.store.get_bytes(digest)
            except ValueError:
                await self._send_json(
                    writer, 400, {"error": f"invalid digest {digest!r}"}
                )
                return
            if raw is None:
                await self._send_json(
                    writer, 404, {"error": "no result for digest"}
                )
                return
            await self._send(
                writer, 200, raw,
                {"Content-Type": "application/json; charset=utf-8"},
            )
            return
        await self._send_json(writer, 404, {"error": f"no route {path}"})

    async def _submit(
        self, writer: asyncio.StreamWriter, body: bytes
    ) -> None:
        if self.scheduler.draining:
            await self._send_json(writer, 503, {"error": "draining"})
            return
        try:
            payload = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            await self._send_json(
                writer, 400, {"error": f"invalid JSON body: {error}"}
            )
            return
        try:
            job, created = self.scheduler.submit(payload)
        except SpecError as error:
            await self._send_json(writer, 400, {"error": str(error)})
            return
        response = job.as_dict()
        response["created"] = created
        await self._send_json(writer, 202 if created else 200, response)

    async def _job_route(
        self, writer: asyncio.StreamWriter, method: str, path: str
    ) -> None:
        rest = path[len("/v1/jobs/"):]
        job_id, _, tail = rest.partition("/")
        job = self.scheduler.jobs.get(job_id)
        if job is None:
            await self._send_json(
                writer, 404, {"error": f"no job {job_id!r}"}
            )
            return
        if not tail and method == "GET":
            await self._send_json(writer, 200, job.as_dict())
            return
        if not tail and method == "DELETE":
            if job.status in TERMINAL_STATES:
                await self._send_json(writer, 409, job.as_dict())
                return
            self.scheduler.cancel(job)
            await self._send_json(writer, 202, job.as_dict())
            return
        if tail == "events" and method == "GET":
            await self._stream_events(writer, job)
            return
        await self._send_json(writer, 405, {"error": "method not allowed"})

    async def _stream_events(
        self, writer: asyncio.StreamWriter, job: Job
    ) -> None:
        lines = ["HTTP/1.1 200 OK"]
        for name, value in SSE_HEADERS.items():
            lines.append(f"{name}: {value}")
        writer.write(("\r\n".join(lines) + "\r\n\r\n").encode("latin-1"))
        await writer.drain()
        subscriber = self.scheduler.subscribe(job)
        try:
            while True:
                try:
                    event, data = await asyncio.wait_for(
                        subscriber.get(), timeout=_SSE_KEEPALIVE_S
                    )
                except asyncio.TimeoutError:
                    writer.write(format_comment())
                    await writer.drain()
                    continue
                writer.write(format_event(event, data))
                await writer.drain()
                if event in TERMINAL_STATES:
                    return
        finally:
            self.scheduler.unsubscribe(job, subscriber)
