"""Job specs: validation, normalization, and content digests.

A submission names one of the three campaign kinds and its parameters;
this module validates the payload against the same constraints the CLI
enforces, normalizes it to a canonical parameter dict (defaults applied,
scenario round-tripped through :class:`FaultScenario`), and derives the
content digest that keys the result store.

The digest covers exactly what determines the result *bits*: the kind,
the normalized semantic parameters (including seed and shard count --
a K-shard Monte-Carlo result is a different quantity than serial), and
:data:`RESULT_VERSION`.  Execution hints that are bit-identical by
construction (``scrub_mode``, kernel ``backend``) and submission
envelope fields (tenant, priority) are deliberately excluded, so
equivalent work dedups across tenants and backends.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.kernels import BACKEND_NAMES
from repro.reliability.scenario import SCHEMES, FaultScenario

#: Bump when a code change alters campaign results at a fixed spec;
#: stored results from older versions then simply stop matching.
RESULT_VERSION = 1

#: Campaign kinds the service schedules.
KINDS: Tuple[str, ...] = ("campaign", "raresim", "scenario")

_CAMPAIGN_LEVELS = ("X", "Y", "Z")
_RARESIM_LEVELS = ("Y", "Z")

_MAX_SHARDS = 64


class SpecError(ValueError):
    """A submitted spec failed validation (HTTP 400)."""


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise SpecError(message)


def _get_int(payload: Dict, key: str, default: int, minimum: int) -> int:
    value = payload.get(key, default)
    _require(
        isinstance(value, int) and not isinstance(value, bool),
        f"{key!r} must be an integer",
    )
    _require(value >= minimum, f"{key!r} must be >= {minimum}, got {value}")
    return value


def _get_float(
    payload: Dict, key: str, default: float, low: float, high: float
) -> float:
    value = payload.get(key, default)
    _require(
        isinstance(value, (int, float)) and not isinstance(value, bool),
        f"{key!r} must be a number",
    )
    value = float(value)
    _require(
        low <= value <= high,
        f"{key!r} must be within [{low}, {high}], got {value}",
    )
    return value


def _get_choice(payload: Dict, key: str, default: str, choices) -> str:
    value = payload.get(key, default)
    _require(
        isinstance(value, str) and value in choices,
        f"{key!r} must be one of {sorted(choices)}, got {value!r}",
    )
    return value


@dataclass(frozen=True)
class JobSpec:
    """A validated, normalized campaign submission.

    ``params`` is the canonical semantic parameter dict (digest-
    relevant); ``execution`` carries bit-identical execution hints that
    stay out of the digest.
    """

    kind: str
    params: Dict[str, object]
    execution: Dict[str, str] = field(default_factory=dict)

    @property
    def seed(self) -> int:
        return int(self.params["seed"])  # always present post-parse

    @property
    def total_units(self) -> int:
        """Work units (intervals or trials) the job simulates."""
        key = "trials" if self.kind == "raresim" else "intervals"
        return int(self.params[key])

    def digest_payload(self) -> Dict[str, object]:
        """The exact structure hashed into the content digest."""
        return {
            "kind": self.kind,
            "params": self.params,
            "version": RESULT_VERSION,
        }

    def digest(self) -> str:
        canonical = json.dumps(
            self.digest_payload(), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    def as_dict(self) -> Dict[str, object]:
        return {
            "kind": self.kind,
            "params": dict(self.params),
            "execution": dict(self.execution),
        }


def _parse_common(payload: Dict) -> Tuple[int, int, float, Dict[str, str]]:
    seed = _get_int(payload, "seed", 0, 0)
    shards = _get_int(payload, "shards", 1, 1)
    _require(shards <= _MAX_SHARDS, f"'shards' must be <= {_MAX_SHARDS}")
    interval_s = _get_float(payload, "interval_s", 0.020, 1e-9, 3600.0)
    execution = {
        "scrub_mode": _get_choice(
            payload, "scrub_mode", "sparse", ("sparse", "dense")
        ),
        "backend": _get_choice(
            payload, "backend", "reference", tuple(BACKEND_NAMES)
        ),
    }
    return seed, shards, interval_s, execution


def _parse_scenario_field(payload: Dict) -> Optional[Dict[str, object]]:
    """Validate + normalize an optional inline FaultScenario object."""
    raw = payload.get("scenario")
    if raw is None:
        return None
    _require(isinstance(raw, dict), "'scenario' must be a JSON object")
    try:
        scenario = FaultScenario.from_dict(raw)
    except (ValueError, TypeError, KeyError) as error:
        raise SpecError(f"invalid scenario: {error}")
    # Round-trip so equivalent submissions (e.g. omitted-vs-null burst)
    # normalize to one canonical form and share a digest.
    return scenario.as_dict()


def parse_spec(payload: object) -> JobSpec:
    """Validate a spec payload and normalize it to a :class:`JobSpec`.

    :raises SpecError: naming the first offending field.
    """
    _require(isinstance(payload, dict), "spec must be a JSON object")
    assert isinstance(payload, dict)
    kind = _get_choice(payload, "kind", "", KINDS)
    seed, shards, interval_s, execution = _parse_common(payload)
    if kind == "campaign":
        params: Dict[str, object] = {
            "level": _get_choice(payload, "level", "Z", _CAMPAIGN_LEVELS),
            "ber": _get_float(payload, "ber", 8e-4, 0.0, 1.0),
            "intervals": _get_int(payload, "intervals", 100, 1),
            "group_size": _get_int(payload, "group_size", 32, 2),
        }
    elif kind == "raresim":
        params = {
            "level": _get_choice(payload, "level", "Z", _RARESIM_LEVELS),
            "ber": _get_float(payload, "ber", 1e-4, 0.0, 1.0),
            "trials": _get_int(payload, "trials", 2000, 1),
            "group_size": _get_int(payload, "group_size", 64, 2),
            "num_groups": _get_int(payload, "num_groups", 2048, 1),
            "scenario": _parse_scenario_field(payload),
        }
    else:  # scenario
        scenario = _parse_scenario_field(payload)
        _require(
            scenario is not None, "'scenario' is required for kind=scenario"
        )
        params = {
            "scheme": _get_choice(payload, "scheme", "Z", SCHEMES),
            "scenario": scenario,
            "intervals": _get_int(payload, "intervals", 100, 1),
            "group_size": _get_int(payload, "group_size", 8, 2),
        }
    params["seed"] = seed
    params["shards"] = shards
    params["interval_s"] = interval_s
    return JobSpec(kind=kind, params=params, execution=execution)


def parse_submission(payload: object) -> Tuple[JobSpec, str, int]:
    """Parse a POST /v1/jobs body into (spec, tenant, priority).

    Accepts either an envelope ``{"spec": {...}, "tenant": ..,
    "priority": ..}`` or a bare spec object carrying the optional
    ``tenant``/``priority`` keys inline.  Tenant and priority are
    scheduling inputs only -- they never reach the digest.
    """
    _require(isinstance(payload, dict), "request body must be a JSON object")
    assert isinstance(payload, dict)
    if "spec" in payload:
        envelope, spec_payload = payload, payload["spec"]
    else:
        envelope = payload
        spec_payload = {
            key: value
            for key, value in payload.items()
            if key not in ("tenant", "priority")
        }
    tenant = envelope.get("tenant", "default")
    _require(
        isinstance(tenant, str) and 0 < len(tenant) <= 64,
        "'tenant' must be a non-empty string (<= 64 chars)",
    )
    priority = envelope.get("priority", 0)
    _require(
        isinstance(priority, int) and not isinstance(priority, bool)
        and -100 <= priority <= 100,
        "'priority' must be an integer in [-100, 100]",
    )
    return parse_spec(spec_payload), tenant, priority
