"""The serve scheduler: bounded worker pool, dedup, checkpoints, drain.

One asyncio task owns all scheduling state; job subprocesses communicate
over a multiprocessing queue pumped on a fixed tick.  The lifecycle:

* ``submit`` validates the spec, computes its content digest, and
  short-circuits: a store hit returns the finished job immediately
  (``cached=True``, zero trials simulated); an in-flight job with the
  same digest is joined rather than duplicated; otherwise the job
  enters the :class:`FairShareQueue`.
* ``run`` claims jobs while worker slots are free and spawns each as a
  **non-daemon** subprocess (the sharded executors fork their own shard
  workers, and daemonic processes cannot have children).  Progress
  messages feed a per-job :class:`~repro.obs.ProgressReporter` whose
  snapshots become SSE events.
* Completion: an untruncated result is filed in the content-addressed
  store and the job's checkpoint files are deleted.  A truncated result
  (cancel/drain) keeps its checkpoints, so resubmitting the same spec
  after a restart resumes from the boundary instead of starting over --
  and, because checkpointed campaigns are bit-identically resumable,
  the final result equals an uninterrupted run.
* ``drain`` (SIGTERM) stops claiming, flips every running job's cancel
  event, and waits under a :class:`~repro.resilience.Deadline` for the
  workers to stop at a trial boundary and flush checkpoints.
"""

from __future__ import annotations

import asyncio
import io
import multiprocessing
import os
import signal
import traceback
from dataclasses import dataclass, field
from queue import Empty
from typing import Dict, List, Optional, Tuple

from repro.obs import MetricsRegistry, ProgressReporter, Telemetry
from repro.obs.export import metrics_snapshot
from repro.parallel.runner import (
    run_sharded_campaign,
    run_sharded_raresim,
    run_sharded_scenario,
)
from repro.parallel.sharding import shard_checkpoint_path
from repro.reliability.scenario import FaultScenario
from repro.resilience import Deadline
from repro.resilience.checkpoint import job_checkpoint_path
from repro.serve.queue import FairShareQueue, QueuedJob
from repro.serve.specs import RESULT_VERSION, JobSpec, parse_submission
from repro.serve.store import ResultStore

#: Scheduler tick: message-queue pump + slot fill cadence.
_TICK_S = 0.05

#: Minimum spacing of per-job "progress" SSE events.
_PROGRESS_EVENT_S = 0.2

_START_METHOD = (
    "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn"
)

#: Job states; "done", "failed", and "cancelled" are terminal.
TERMINAL_STATES = frozenset({"done", "failed", "cancelled"})


def _raise_interrupt(signum, frame):  # pragma: no cover - signal path
    raise KeyboardInterrupt()


class _WorkerProgress:
    """In-worker progress adapter: batches advances onto the queue."""

    enabled = True

    def __init__(self, queue, batch: int) -> None:
        self._queue = queue
        self._batch = max(1, batch)
        self._pending = 0

    def update(self, done: Optional[int] = None, advance: int = 1) -> None:
        self._pending += advance
        if self._pending >= self._batch:
            self._queue.put(("progress", self._pending))
            self._pending = 0

    def note_resumed(self, units: int) -> None:
        self._queue.put(("resumed", units))

    def finish(self) -> None:
        if self._pending:
            self._queue.put(("progress", self._pending))
            self._pending = 0


def _job_worker(
    kind: str,
    params: Dict,
    execution: Dict,
    checkpoint_path: str,
    resume_from: str,
    checkpoint_every: int,
    queue,
    cancel_event,
) -> None:
    """Subprocess entry point: run one job, ship messages back.

    SIGTERM is mapped to :class:`KeyboardInterrupt` so a drained or
    directly-terminated worker stops at a trial boundary with its
    checkpoint flushed, exactly like an operator Ctrl-C.
    """
    signal.signal(signal.SIGTERM, _raise_interrupt)
    progress = _WorkerProgress(queue, batch=max(1, params_units(params) // 200))
    telemetry = Telemetry.create()
    common = dict(
        shards=params["shards"],
        seed=params["seed"],
        interval_s=params["interval_s"],
        telemetry=telemetry,
        progress=progress,
        checkpoint_path=checkpoint_path,
        checkpoint_every=checkpoint_every,
        resume_from=resume_from,
        cancel=cancel_event.is_set,
        scrub_mode=execution["scrub_mode"],
        backend=execution["backend"],
    )
    try:
        if kind == "campaign":
            result = run_sharded_campaign(
                params["level"], params["ber"], params["intervals"],
                params["group_size"], **common,
            )
        elif kind == "raresim":
            scenario = (
                FaultScenario.from_dict(params["scenario"])
                if params.get("scenario")
                else None
            )
            result = run_sharded_raresim(
                params["level"], params["ber"], params["trials"],
                params["group_size"], params["num_groups"],
                scenario=scenario, **common,
            )
        else:
            result = run_sharded_scenario(
                params["scheme"],
                FaultScenario.from_dict(params["scenario"]),
                params["intervals"], params["group_size"], **common,
            )
        progress.finish()
        queue.put(
            ("result", result.as_dict(), metrics_snapshot(telemetry.metrics))
        )
    except KeyboardInterrupt:
        # Interrupted outside the campaign loop (startup/teardown); the
        # checkpoint, if any, is from the last boundary.
        queue.put(("interrupted", ""))
    except BaseException:
        queue.put(("error", traceback.format_exc()))


def params_units(params: Dict) -> int:
    """Total work units (trials or intervals) a params dict describes."""
    return int(params.get("trials", params.get("intervals", 0)))


@dataclass
class Job:
    """Scheduler-side state of one submission."""

    job_id: str
    spec: JobSpec
    digest: str
    tenant: str
    priority: int
    status: str = "queued"
    cached: bool = False
    error: str = ""
    stop_reason: str = ""
    metrics: List[Dict] = field(default_factory=list)
    history: List[Tuple[str, Dict]] = field(default_factory=list)
    subscribers: List[asyncio.Queue] = field(default_factory=list)
    progress: Optional[ProgressReporter] = None
    process: Optional[multiprocessing.process.BaseProcess] = None
    mp_queue: object = None
    cancel_event: object = None
    _last_progress_emit: float = 0.0
    _dead_ticks: int = 0

    def as_dict(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "job_id": self.job_id,
            "digest": self.digest,
            "kind": self.spec.kind,
            "tenant": self.tenant,
            "priority": self.priority,
            "status": self.status,
            "cached": self.cached,
        }
        if self.progress is not None:
            payload["progress"] = self.progress.snapshot()
        if self.error:
            payload["error"] = self.error
        if self.stop_reason:
            payload["stop_reason"] = self.stop_reason
        return payload


class Scheduler:
    """Owns the queue, the worker pool, and every job's lifecycle."""

    def __init__(
        self,
        store: ResultStore,
        checkpoint_dir: str,
        workers: int = 2,
        checkpoint_every: int = 25,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.store = store
        self.checkpoint_dir = checkpoint_dir
        self.workers = workers
        self.checkpoint_every = checkpoint_every
        self.queue = FairShareQueue()
        self.jobs: Dict[str, Job] = {}
        self.running: Dict[str, Job] = {}
        self.active_by_digest: Dict[str, str] = {}
        self.draining = False
        self._counter = 0
        self._context = multiprocessing.get_context(_START_METHOD)
        registry = metrics if metrics is not None else MetricsRegistry()
        self.metrics = registry
        self._m_submitted = registry.counter(
            "serve_jobs_submitted_total", "job submissions accepted",
            labels=("kind",),
        )
        self._m_store_hits = registry.counter(
            "serve_store_hits_total",
            "submissions answered from the content-addressed store",
        )
        self._m_completed = registry.counter(
            "serve_jobs_completed_total", "jobs reaching a terminal state",
            labels=("status",),
        )
        self._m_units = registry.counter(
            "serve_units_simulated_total",
            "intervals/trials actually simulated (cache hits add zero)",
        )
        self._m_running = registry.gauge(
            "serve_jobs_running", "jobs currently executing"
        )
        self._m_queued = registry.gauge(
            "serve_jobs_queued", "jobs waiting for a worker slot"
        )

    # -- submission ---------------------------------------------------------------

    def submit(self, payload: object) -> Tuple[Job, bool]:
        """Accept a submission; returns ``(job, created)``.

        ``created`` is False when the submission was answered by the
        store (cache hit) or joined to an in-flight job with the same
        digest -- in both cases no new simulation work was enqueued.
        """
        spec, tenant, priority = parse_submission(payload)
        digest = spec.digest()
        self._m_submitted.labels(kind=spec.kind).inc()
        active_id = self.active_by_digest.get(digest)
        if active_id is not None:
            return self.jobs[active_id], False
        if self.store.has(digest):
            self._m_store_hits.inc()
            job = self._new_job(spec, digest, tenant, priority)
            job.status = "done"
            job.cached = True
            self._publish(job, "done", {"digest": digest, "cached": True})
            return job, False
        job = self._new_job(spec, digest, tenant, priority)
        self.active_by_digest[digest] = job.job_id
        self.queue.push(
            QueuedJob(
                job_id=job.job_id, digest=digest, tenant=tenant,
                priority=priority, payload=spec,
            )
        )
        self._publish(job, "queued", {"digest": digest})
        self._m_queued.set(float(self.queue.pending()))
        return job, True

    def _new_job(
        self, spec: JobSpec, digest: str, tenant: str, priority: int
    ) -> Job:
        self._counter += 1
        job = Job(
            job_id=f"j{self._counter:06d}", spec=spec, digest=digest,
            tenant=tenant, priority=priority,
        )
        self.jobs[job.job_id] = job
        return job

    # -- events -------------------------------------------------------------------

    def _publish(self, job: Job, event: str, data: Dict) -> None:
        job.history.append((event, data))
        for subscriber in job.subscribers:
            subscriber.put_nowait((event, data))

    def subscribe(self, job: Job) -> asyncio.Queue:
        """An event queue pre-loaded with the job's history."""
        subscriber: asyncio.Queue = asyncio.Queue()
        for event, data in job.history:
            subscriber.put_nowait((event, data))
        job.subscribers.append(subscriber)
        return subscriber

    def unsubscribe(self, job: Job, subscriber: asyncio.Queue) -> None:
        if subscriber in job.subscribers:
            job.subscribers.remove(subscriber)

    # -- worker pool --------------------------------------------------------------

    def _checkpoint_candidates(self, job: Job) -> List[str]:
        base = job_checkpoint_path(self.checkpoint_dir, job.digest)
        shards = int(job.spec.params["shards"])
        if shards == 1:
            return [base]
        return [
            shard_checkpoint_path(base, index, shards)
            for index in range(shards)
        ]

    def _start_job(self, job: Job) -> None:
        base = job_checkpoint_path(self.checkpoint_dir, job.digest)
        resume = (
            base
            if any(
                os.path.exists(path)
                for path in self._checkpoint_candidates(job)
            )
            else ""
        )
        job.mp_queue = self._context.Queue()
        job.cancel_event = self._context.Event()
        # Non-daemon: sharded jobs fork their own shard workers.
        job.process = self._context.Process(
            target=_job_worker,
            args=(
                job.spec.kind, dict(job.spec.params),
                dict(job.spec.execution), base, resume,
                self.checkpoint_every, job.mp_queue, job.cancel_event,
            ),
            daemon=False,
        )
        job.progress = ProgressReporter(
            total=job.spec.total_units, label=job.job_id,
            stream=io.StringIO(), min_interval_s=float("inf"),
        )
        job.status = "running"
        job.process.start()
        self.running[job.job_id] = job
        self._m_running.set(float(len(self.running)))
        self._publish(job, "running", {"resumed_from_checkpoint": bool(resume)})

    def cancel(self, job: Job) -> bool:
        """Request cancellation; True if the job can still be stopped."""
        if job.status == "running" and job.cancel_event is not None:
            job.cancel_event.set()
            return True
        return False

    def request_drain(self) -> None:
        """Stop claiming new jobs and cancel the running ones."""
        self.draining = True
        for job in list(self.running.values()):
            self.cancel(job)

    # -- the scheduling loop ------------------------------------------------------

    async def run(self, stop: asyncio.Event) -> None:
        """Claim/pump/reap until ``stop`` is set, then drain in-flight."""
        while not stop.is_set():
            self.tick()
            await asyncio.sleep(_TICK_S)

    def tick(self) -> None:
        """One scheduling step (separate from run() for tests)."""
        while (
            not self.draining
            and len(self.running) < self.workers
            and self.queue.pending() > 0
        ):
            claimed = self.queue.claim("local")
            if claimed is None:  # pragma: no cover - pending() said otherwise
                break
            self._start_job(self.jobs[claimed.job_id])
        for job in list(self.running.values()):
            self._pump(job)
        self._m_queued.set(float(self.queue.pending()))

    def _pump(self, job: Job) -> None:
        """Drain one job's message queue; reap it on completion."""
        finished = False
        while True:
            try:
                message = job.mp_queue.get_nowait()
            except Empty:
                break
            kind = message[0]
            if kind == "progress":
                assert job.progress is not None
                job.progress.update(advance=message[1])
                self._m_units.inc(message[1])
                self._emit_progress(job)
            elif kind == "resumed":
                assert job.progress is not None
                job.progress.note_resumed(message[1])
            elif kind == "result":
                self._finish(job, message[1], message[2])
                finished = True
            elif kind == "interrupted":
                self._conclude(job, "cancelled", stop_reason="interrupted")
                finished = True
            elif kind == "error":
                job.error = message[1]
                self._conclude(job, "failed")
                finished = True
        if finished:
            return
        if job.process is not None and not job.process.is_alive():
            # The final message can trail the process exit briefly in
            # the queue's feeder pipe; only declare the worker dead
            # after a few empty ticks.
            job._dead_ticks += 1
            if job._dead_ticks >= 4:
                job.error = (
                    f"worker exited with code {job.process.exitcode} "
                    "without reporting a result"
                )
                self._conclude(job, "failed")
        else:
            job._dead_ticks = 0

    def _emit_progress(self, job: Job) -> None:
        assert job.progress is not None
        now = job.progress._clock()
        if now - job._last_progress_emit < _PROGRESS_EVENT_S:
            return
        job._last_progress_emit = now
        self._publish(job, "progress", job.progress.snapshot(now))

    def _finish(self, job: Job, result: Dict, metrics: List[Dict]) -> None:
        job.metrics = metrics
        job.stop_reason = str(result.get("stop_reason", ""))
        if result.get("truncated"):
            # Cancelled or drained mid-run: keep the checkpoints so a
            # resubmission resumes at the boundary, and do NOT store the
            # partial result under the digest of the full campaign.
            self._conclude(job, "cancelled", stop_reason=job.stop_reason)
            return
        record = {
            "digest": job.digest,
            "kind": job.spec.kind,
            "params": job.spec.params,
            "version": RESULT_VERSION,
            "result": result,
        }
        self.store.put(job.digest, record)
        for path in self._checkpoint_candidates(job):
            try:
                os.remove(path)
            except FileNotFoundError:
                pass
        self._publish(job, "metrics", {"series": metrics})
        self._conclude(job, "done")

    def _conclude(
        self, job: Job, status: str, stop_reason: str = ""
    ) -> None:
        if stop_reason:
            job.stop_reason = stop_reason
        job.status = status
        self.queue.complete(job.job_id)
        self.running.pop(job.job_id, None)
        self.active_by_digest.pop(job.digest, None)
        self._m_running.set(float(len(self.running)))
        self._m_completed.labels(status=status).inc()
        if job.process is not None:
            job.process.join(timeout=5.0)
        data: Dict[str, object] = {"digest": job.digest, "cached": job.cached}
        if job.stop_reason:
            data["stop_reason"] = job.stop_reason
        if job.error:
            data["error"] = job.error.strip().splitlines()[-1]
        self._publish(job, status, data)

    # -- drain --------------------------------------------------------------------

    async def drain(self, grace_s: float = 10.0) -> None:
        """Cancel running jobs and wait for checkpointed shutdown."""
        self.request_drain()
        deadline = Deadline(grace_s)
        while self.running and not deadline.expired():
            self.tick()
            await asyncio.sleep(_TICK_S)
        for job in list(self.running.values()):
            # Out of grace: SIGTERM maps to KeyboardInterrupt in the
            # worker, which still flushes at the next boundary.
            if job.process is not None and job.process.is_alive():
                job.process.terminate()
        hard = Deadline(grace_s)
        while self.running and not hard.expired():
            self.tick()
            await asyncio.sleep(_TICK_S)
