"""Analytical reliability of uniform per-line ECC-k caches (Table II).

A line protected by ECC-k fails when more than k of its stored bits flip
within one scrub interval.  Following the paper, the stored width of an
ECC-k line is the 512 data bits plus the BCH check bits (10 bits per
corrected error for the m = 10 field -- exactly the 60 bits/line the
paper charges ECC-6).  The cache fails when any line fails; FIT converts
the per-interval probability through :mod:`repro.reliability.fit`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.reliability.binomial import binomial_tail, complement_power
from repro.reliability.fit import (
    fit_from_interval_probability,
    mttf_seconds_from_interval_probability,
)

#: Check bits charged per corrected error (BCH over GF(2^10); see
#: :class:`repro.coding.bch.BCH`, which realises exactly this cost).
CHECK_BITS_PER_T: int = 10


@dataclass(frozen=True)
class ECCCacheModel:
    """FIT model of a cache with uniform per-line ECC-t.

    :param t: correction capability per line.
    :param ber: per-bit flip probability within one scrub interval.
    :param num_lines: lines in the cache (2^20 for 64 MB of 64 B lines).
    :param data_bits: payload bits per line.
    :param interval_s: scrub interval.
    """

    t: int
    ber: float
    num_lines: int = 1 << 20
    data_bits: int = 512
    interval_s: float = 0.020

    def __post_init__(self) -> None:
        if self.t < 0:
            raise ValueError("t must be non-negative")
        if not 0.0 <= self.ber <= 1.0:
            raise ValueError("ber must be a probability")
        if self.num_lines <= 0 or self.data_bits <= 0:
            raise ValueError("geometry must be positive")

    @property
    def stored_bits(self) -> int:
        """Stored width of one line: data plus ECC check bits."""
        return self.data_bits + CHECK_BITS_PER_T * self.t

    def line_failure_probability(self) -> float:
        """P[more than t faults in a line] per interval (Table II row 1)."""
        return binomial_tail(self.stored_bits, self.t + 1, self.ber)

    def cache_failure_probability(self) -> float:
        """P[any line fails] per interval (Table II row 2)."""
        return complement_power(self.line_failure_probability(), self.num_lines)

    def fit(self) -> float:
        """Cache FIT rate (Table II row 3)."""
        return fit_from_interval_probability(
            self.cache_failure_probability(), self.interval_s
        )

    def mttf_seconds(self) -> float:
        """Cache mean time to failure."""
        return mttf_seconds_from_interval_probability(
            self.cache_failure_probability(), self.interval_s
        )

    def storage_overhead_bits(self) -> int:
        """Metadata bits per line (60 for ECC-6)."""
        return CHECK_BITS_PER_T * self.t


def table2_rows(
    ber: float = 5.3e-6,
    num_lines: int = 1 << 20,
    interval_s: float = 0.020,
    t_values: range = range(1, 7),
) -> List[dict]:
    """Regenerate Table II: one dict per ECC-t column."""
    rows = []
    for t in t_values:
        model = ECCCacheModel(
            t=t, ber=ber, num_lines=num_lines, interval_s=interval_s
        )
        rows.append(
            {
                "ecc": f"ECC-{t}",
                "t": t,
                "line_failure": model.line_failure_probability(),
                "cache_failure": model.cache_failure_probability(),
                "fit": model.fit(),
            }
        )
    return rows
