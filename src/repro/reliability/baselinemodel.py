"""Analytical FIT models of the comparison schemes (Tables XI and XII).

Per section VIII-A, each scheme is provisioned with the same resources as
SuDoku (CRC-31 detection per line; parity budget matching the two PLTs):

* **CPPC** [17]: one global parity over the cache.  With transient fault
  rates this high, some interval almost always contains 2+ faulty lines,
  so the cache fails nearly every interval (paper: 1.69e14 FIT -- i.e.
  MTTF of seconds).
* **RAID-6**: two parities (row + diagonal) per 512-line group; corrects
  any two faulty lines of a group (their positions are known from the
  per-line CRC, making this erasure decoding).  Fails at 3+ multi-bit
  lines in a group.
* **2DP** [18]: horizontal per-line parity (subsumed by ECC-1 here) plus
  one vertical parity line per group.  The vertical parity corrects one
  faulty bit per column; two multi-bit lines clash when any of their
  faults share a column.
* **Hi-ECC** [71]: ECC-6 at 1 KB granularity -- 16x more bits under each
  code word, so 7 faults among ~8.3 kb fail the region (paper: 1.47 FIT).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.reliability.binomial import binomial_tail, complement_power
from repro.reliability.eccmodel import CHECK_BITS_PER_T
from repro.reliability.fit import fit_from_interval_probability


@dataclass(frozen=True)
class BaselineResult:
    """FIT summary of one baseline configuration."""

    name: str
    fit: float
    cache_failure_per_interval: float


def cppc_model(
    ber: float,
    line_bits: int = 543,
    num_lines: int = 1 << 20,
    interval_s: float = 0.020,
) -> BaselineResult:
    """CPPC + CRC-31: fails when 2+ lines anywhere have any fault.

    ``line_bits`` defaults to data + CRC (no per-line ECC -- CPPC's
    per-line parity is its only line-local machinery, subsumed by the CRC
    here).
    """
    p_faulty_line = binomial_tail(line_bits, 1, ber)
    p_fail = binomial_tail(num_lines, 2, p_faulty_line)
    return BaselineResult(
        "CPPC + CRC-31",
        fit_from_interval_probability(p_fail, interval_s),
        p_fail,
    )


def raid6_model(
    ber: float,
    line_bits: int = 553,
    group_size: int = 512,
    num_lines: int = 1 << 20,
    interval_s: float = 0.020,
) -> BaselineResult:
    """RAID-6 + ECC-1 + CRC-31: fails at 3+ multi-bit lines per group."""
    p_multi = binomial_tail(line_bits, 2, ber)
    group_fail = binomial_tail(group_size, 3, p_multi)
    p_fail = complement_power(group_fail, num_lines // group_size)
    return BaselineResult(
        "RAID-6 + CRC-31",
        fit_from_interval_probability(p_fail, interval_s),
        p_fail,
    )


def twodp_model(
    ber: float,
    line_bits: int = 553,
    group_size: int = 512,
    num_lines: int = 1 << 20,
    interval_s: float = 0.020,
) -> BaselineResult:
    """2DP + ECC-1 + CRC-31.

    The vertical parity resolves one fault per column.  A group fails
    when two multi-bit lines collide in any column (the vertical parity
    of that column no longer pinpoints either), or when three or more
    multi-bit lines appear (two parity dimensions, too many unknowns once
    columns collide -- we charge the pairwise-collision union bound).
    """
    p_multi = binomial_tail(line_bits, 2, ber)
    # P[two independent ~2-fault lines share >= 1 column] ~ 4 / line_bits.
    q_column_clash = 1.0 - (
        (line_bits - 2) * (line_bits - 3) / (line_bits * (line_bits - 1))
    )
    pairs = group_size * (group_size - 1) / 2.0
    group_fail = min(pairs * p_multi * p_multi * q_column_clash, 1.0)
    p_fail = complement_power(group_fail, num_lines // group_size)
    return BaselineResult(
        "2DP + ECC-1 + CRC-31",
        fit_from_interval_probability(p_fail, interval_s),
        p_fail,
    )


def hiecc_model(
    ber: float,
    region_bytes: int = 1024,
    t: int = 6,
    capacity_bytes: int = 64 * 1024 * 1024,
    interval_s: float = 0.020,
) -> BaselineResult:
    """Hi-ECC: ECC-t over ``region_bytes`` regions (Table XII).

    The wider field (GF(2^14) for 8-kilobit payloads) charges 14 check
    bits per corrected error.
    """
    data_bits = region_bytes * 8
    field_degree = _field_degree_for(data_bits, t)
    stored_bits = data_bits + field_degree * t
    p_region = binomial_tail(stored_bits, t + 1, ber)
    num_regions = capacity_bytes // region_bytes
    p_fail = complement_power(p_region, num_regions)
    return BaselineResult(
        f"Hi-ECC (ECC-{t} @ {region_bytes}B)",
        fit_from_interval_probability(p_fail, interval_s),
        p_fail,
    )


def ecc6_per_line_model(
    ber: float,
    num_lines: int = 1 << 20,
    interval_s: float = 0.020,
) -> BaselineResult:
    """Per-line ECC-6, the paper's main strawman (Table II's last column)."""
    stored_bits = 512 + CHECK_BITS_PER_T * 6
    p_line = binomial_tail(stored_bits, 7, ber)
    p_fail = complement_power(p_line, num_lines)
    return BaselineResult(
        "ECC-6 per line",
        fit_from_interval_probability(p_fail, interval_s),
        p_fail,
    )


def _field_degree_for(data_bits: int, t: int) -> int:
    """Smallest m with 2^m - 1 >= data_bits + m*t (BCH length bound)."""
    m = 3
    while (1 << m) - 1 < data_bits + m * t:
        m += 1
    return m
