"""Low-voltage SRAM study (section VI, Table IV).

Below Vmin, SRAM cells fail *persistently* at rates around 1e-3
(1000 ppm).  Table IV compares the probability of cache failure for
uniform ECC-7/8/9 against SuDoku at that fault rate.

The ECC-k rows follow directly from the binomial line model and reproduce
the paper's values.

The SuDoku row needs persistent-fault-specific treatment: at BER 1e-3 a
512-line RAID-Group carries ~280 faulty bits, so the *transient* SuDoku
machinery (designed for ~4 multi-bit lines per 64 MB cache) saturates.
Persistent faults, however, are stable: their group-parity mismatch
signature repeats every scrub, so the controller can learn positions over
time and repair by position-guided flipping, validated by CRC.  Under
that regime a line is unrecoverable only when two or more of its faults
are *hidden* -- sharing a column with another faulty line so the parity
mismatch cancels -- under **both** hashes (one hidden fault is covered by
ECC-1).  We expose the RAID-Group size as a parameter because it is the
lever that controls column-collision density; the paper does not state
the group size behind its 3.8e-10 figure, and at the transient default of
512 lines no parity scheme survives this BER (see EXPERIMENTS.md).
"""

from __future__ import annotations

from typing import Dict, List

from repro.reliability.binomial import (
    binomial_pmf,
    binomial_tail,
    complement_power,
)
from repro.reliability.eccmodel import CHECK_BITS_PER_T


def ecc_k_cache_failure(
    t: int,
    ber: float = 1e-3,
    num_lines: int = 1 << 20,
    data_bits: int = 512,
) -> float:
    """P[cache failure] with uniform per-line ECC-t at a persistent BER."""
    stored_bits = data_bits + CHECK_BITS_PER_T * t
    p_line = binomial_tail(stored_bits, t + 1, ber)
    return complement_power(p_line, num_lines)


def hidden_fault_probability(ber: float, group_size: int) -> float:
    """P[a given persistent fault shares its column with a faulty peer].

    A mismatch column "hides" when one or more of the other group members
    is also faulty there (the XOR stops attributing the column uniquely).
    """
    if not 0.0 <= ber <= 1.0:
        raise ValueError("ber must be a probability")
    if group_size < 2:
        raise ValueError("group_size must be at least 2")
    return complement_power(ber, group_size - 1)


def line_unrecoverable_one_hash(
    ber: float,
    group_size: int,
    line_bits: int = 553,
    max_faults: int = 24,
) -> float:
    """P[a line cannot be repaired within one of its RAID-Groups].

    A line with k persistent faults is repairable when at most one fault
    is hidden (flip the visible ones, let ECC-1 absorb the hidden one,
    certify with CRC).  Summed over the fault-count distribution.
    """
    p_hidden = hidden_fault_probability(ber, group_size)
    total = 0.0
    for k in range(2, max_faults + 1):
        p_k = binomial_pmf(line_bits, k, ber)
        if p_k == 0.0:
            continue
        p_two_hidden = binomial_tail(k, 2, p_hidden)
        total += p_k * p_two_hidden
    return min(total, 1.0)


def sudoku_persistent_cache_failure(
    ber: float = 1e-3,
    group_size: int = 16,
    line_bits: int = 553,
    num_lines: int = 1 << 20,
) -> float:
    """P[cache failure] for SuDoku-Z against persistent faults.

    A line is lost when it is unrecoverable under both hashes
    (independent partner sets by the skewing guarantee).  The cache fails
    when any line is lost.
    """
    p_one = line_unrecoverable_one_hash(ber, group_size, line_bits)
    p_line = p_one * p_one
    return complement_power(p_line, num_lines)


def sudoku_parity_overhead_bits(group_size: int, line_bits: int = 553) -> float:
    """Amortised parity bits per line for the two PLTs at ``group_size``."""
    if group_size < 2:
        raise ValueError("group_size must be at least 2")
    return 2.0 * line_bits / group_size


def sram_vmin_table(
    ber: float = 1e-3,
    num_lines: int = 1 << 20,
    sudoku_group_sizes: tuple = (8, 16, 32, 512),
) -> List[Dict[str, object]]:
    """Regenerate Table IV: ECC-7/8/9 vs SuDoku at the low-voltage BER.

    SuDoku appears once per candidate group size, with the amortised
    parity overhead shown so the storage trade-off is visible (ECC-9
    costs 90 bits/line; SuDoku at a 16-line group costs 41 + ~69 parity
    bits -- comparable -- while at 512-line groups parity is cheap but the
    collision density is fatal at this BER).
    """
    rows: List[Dict[str, object]] = [
        {
            "scheme": f"ECC-{t}",
            "cache_failure": ecc_k_cache_failure(t, ber=ber, num_lines=num_lines),
            "overhead_bits_per_line": float(CHECK_BITS_PER_T * t),
        }
        for t in (7, 8, 9)
    ]
    for group_size in sudoku_group_sizes:
        rows.append(
            {
                "scheme": f"SuDoku (G={group_size})",
                "cache_failure": sudoku_persistent_cache_failure(
                    ber=ber, group_size=group_size, num_lines=num_lines
                ),
                "overhead_bits_per_line": 41.0
                + sudoku_parity_overhead_bits(group_size),
            }
        )
    return rows
