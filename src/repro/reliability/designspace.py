"""Design-space exploration: pick a configuration meeting a FIT target.

The paper fixes one operating point (512-line groups, ECC-1, 20 ms
scrub) and shows it meets the 1-FIT target with enormous margin.  A
deployment at a different technology node or cache size faces the
inverse problem: *given* a thermal stability and a FIT target, which
combination of per-line code (ECC-1/ECC-2 SuDoku, or uniform ECC-k),
RAID-Group size, and scrub interval is cheapest?

:func:`enumerate_design_space` prices every combination on three axes --
storage (bits/line), raw scrub bandwidth (fraction of the interval spent
reading the array), and worst-case correction latency -- and
:func:`pareto_front` / :func:`cheapest_meeting_target` extract the
useful answers.  All reliability numbers come from the same validated
models as the paper exhibits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence

from repro.core.stats import LatencyModel
from repro.reliability.eccmodel import CHECK_BITS_PER_T, ECCCacheModel
from repro.reliability.sudokumodel import SuDokuReliabilityModel
from repro.sttram.variation import effective_ber

#: Stored line widths per SuDoku inner-code strength.
_SUDOKU_LINE_BITS = {1: 553, 2: 563}
#: Per-line metadata bits (CRC + ECC) per inner-code strength.
_SUDOKU_META_BITS = {1: 41, 2: 51}


@dataclass(frozen=True)
class DesignPoint:
    """One priced configuration."""

    scheme: str
    group_size: Optional[int]
    scrub_interval_s: float
    ber: float
    fit: float
    overhead_bits_per_line: float
    scrub_bandwidth_fraction: float
    correction_latency_us: float

    def meets(self, target_fit: float) -> bool:
        """Does the point satisfy the reliability target?"""
        return self.fit <= target_fit

    @property
    def label(self) -> str:
        """Compact display label."""
        group = f", G={self.group_size}" if self.group_size else ""
        return (
            f"{self.scheme}{group}, scrub {self.scrub_interval_s * 1000:g}ms"
        )


def enumerate_design_space(
    delta: float = 35.0,
    sigma_fraction: float = 0.10,
    num_lines: int = 1 << 20,
    group_sizes: Sequence[int] = (128, 256, 512, 1024),
    scrub_intervals_s: Sequence[float] = (0.010, 0.020, 0.040),
    sudoku_ecc_ts: Sequence[int] = (1, 2),
    uniform_ecc_ts: Sequence[int] = (4, 5, 6, 7),
    read_s: float = 9e-9,
) -> List[DesignPoint]:
    """Price every configuration in the sweep."""
    latency = LatencyModel(read_s=read_s)
    points: List[DesignPoint] = []
    for interval_s in scrub_intervals_s:
        ber = effective_ber(delta, sigma_fraction * delta, interval_s)
        scrub_fraction = num_lines * read_s / interval_s
        for ecc_t in sudoku_ecc_ts:
            line_bits = _SUDOKU_LINE_BITS[ecc_t]
            for group_size in group_sizes:
                model = SuDokuReliabilityModel(
                    ber=ber,
                    line_bits=line_bits,
                    group_size=group_size,
                    num_lines=num_lines,
                    interval_s=interval_s,
                    ecc_t=ecc_t,
                )
                parity_bits = 2.0 * line_bits * (num_lines // group_size) / num_lines
                points.append(
                    DesignPoint(
                        scheme=f"SuDoku-Z (ECC-{ecc_t})",
                        group_size=group_size,
                        scrub_interval_s=interval_s,
                        ber=ber,
                        fit=model.fit_z(),
                        overhead_bits_per_line=_SUDOKU_META_BITS[ecc_t] + parity_bits,
                        scrub_bandwidth_fraction=scrub_fraction,
                        correction_latency_us=latency.raid4_repair(group_size) * 1e6,
                    )
                )
        for ecc_t in uniform_ecc_ts:
            model = ECCCacheModel(
                t=ecc_t, ber=ber, num_lines=num_lines, interval_s=interval_s
            )
            points.append(
                DesignPoint(
                    scheme=f"uniform ECC-{ecc_t}",
                    group_size=None,
                    scrub_interval_s=interval_s,
                    ber=ber,
                    fit=model.fit(),
                    overhead_bits_per_line=float(CHECK_BITS_PER_T * ecc_t),
                    scrub_bandwidth_fraction=scrub_fraction,
                    correction_latency_us=0.05,  # multi-cycle decoder, ns-scale
                )
            )
    return points


def pareto_front(
    points: Iterable[DesignPoint], target_fit: float = 1.0
) -> List[DesignPoint]:
    """Non-dominated feasible points on (storage, bandwidth, latency)."""
    feasible = [point for point in points if point.meets(target_fit)]
    front: List[DesignPoint] = []
    for candidate in feasible:
        dominated = any(
            other is not candidate
            and other.overhead_bits_per_line <= candidate.overhead_bits_per_line
            and other.scrub_bandwidth_fraction <= candidate.scrub_bandwidth_fraction
            and other.correction_latency_us <= candidate.correction_latency_us
            and (
                other.overhead_bits_per_line < candidate.overhead_bits_per_line
                or other.scrub_bandwidth_fraction < candidate.scrub_bandwidth_fraction
                or other.correction_latency_us < candidate.correction_latency_us
            )
            for other in feasible
        )
        if not dominated:
            front.append(candidate)
    front.sort(key=lambda p: (p.overhead_bits_per_line, p.scrub_bandwidth_fraction))
    return front


def cheapest_meeting_target(
    points: Iterable[DesignPoint], target_fit: float = 1.0
) -> Optional[DesignPoint]:
    """Feasible point with the least storage (bandwidth breaks ties)."""
    feasible = [point for point in points if point.meets(target_fit)]
    if not feasible:
        return None
    return min(
        feasible,
        key=lambda p: (
            p.overhead_bits_per_line,
            p.scrub_bandwidth_fraction,
            p.correction_latency_us,
        ),
    )
