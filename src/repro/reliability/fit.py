"""FIT / MTTF / per-interval probability conversions.

The paper reports reliability as FIT (failures in 10^9 device-hours) and
MTTF.  All of our models natively produce a *per-scrub-interval failure
probability*; these helpers convert between the three representations.
The conversions assume the per-interval probability is small (failures
form a homogeneous Bernoulli process over intervals), which holds for
everything except deliberately broken configurations -- for those, exact
geometric-distribution forms are used.
"""

from __future__ import annotations

import math

#: Hours in the FIT reference period.
HOURS_PER_BILLION: float = 1e9

#: Seconds per hour, spelled out for readability.
SECONDS_PER_HOUR: float = 3600.0


def intervals_per_billion_hours(interval_s: float) -> float:
    """How many scrub intervals fit in 10^9 hours."""
    if interval_s <= 0:
        raise ValueError("interval must be positive")
    return HOURS_PER_BILLION * SECONDS_PER_HOUR / interval_s


def fit_from_interval_probability(p_fail: float, interval_s: float) -> float:
    """FIT rate of a system failing with probability ``p_fail`` per interval.

    Uses the exact hazard rate ``-ln(1-p)/interval`` so that saturated
    probabilities (p ~ 1) still produce a finite, meaningful rate.
    """
    _check_probability(p_fail)
    if p_fail == 0.0:
        return 0.0
    if p_fail == 1.0:
        # Certain failure every interval: report the saturation rate (one
        # failure per interval) rather than an infinity that breaks
        # downstream arithmetic -- this is what "fails continuously" means
        # in FIT terms (~1.8e14 for a 20 ms interval).
        return intervals_per_billion_hours(interval_s)
    rate_per_interval = -math.log1p(-p_fail)
    return rate_per_interval * intervals_per_billion_hours(interval_s)


def interval_probability_from_fit(fit: float, interval_s: float) -> float:
    """Inverse of :func:`fit_from_interval_probability`."""
    if fit < 0:
        raise ValueError("FIT must be non-negative")
    rate_per_interval = fit / intervals_per_billion_hours(interval_s)
    return -math.expm1(-rate_per_interval)


def mttf_seconds_from_interval_probability(p_fail: float, interval_s: float) -> float:
    """Mean time to failure given a per-interval failure probability.

    Exactly ``interval / p`` for a geometric process (mean number of
    trials is 1/p).
    """
    _check_probability(p_fail)
    if p_fail == 0.0:
        return float("inf")
    return interval_s / p_fail


def fit_to_mttf_hours(fit: float) -> float:
    """MTTF in hours for a given FIT rate (10^9 / FIT)."""
    if fit < 0:
        raise ValueError("FIT must be non-negative")
    if fit == 0.0:
        return float("inf")
    return HOURS_PER_BILLION / fit


def mttf_hours_to_fit(mttf_hours: float) -> float:
    """FIT rate for a given MTTF in hours."""
    if mttf_hours <= 0:
        raise ValueError("MTTF must be positive")
    return HOURS_PER_BILLION / mttf_hours


def _check_probability(value: float) -> None:
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"probability out of range: {value}")
