"""Reliability evaluation: the mathematics behind every table in the paper.

* :mod:`repro.reliability.binomial` -- log-domain binomial tails (the
  probabilities here span ~30 orders of magnitude).
* :mod:`repro.reliability.fit` -- FIT / MTTF / per-interval conversions.
* :mod:`repro.reliability.eccmodel` -- uniform per-line ECC-k caches
  (Table II and the ECC columns of Tables VIII and X).
* :mod:`repro.reliability.sudokumodel` -- analytical failure models of
  SuDoku-X / -Y / -Z (sections III-F, IV-D/E, V-C, Fig 7, Tables VIII-X).
* :mod:`repro.reliability.baselinemodel` -- CPPC, RAID-6, 2DP, Hi-ECC
  (Tables XI and XII).
* :mod:`repro.reliability.sram` -- the low-voltage SRAM study (Table IV).
* :mod:`repro.reliability.montecarlo` -- fault-injection campaigns over
  the *functional* engines, used to validate the analytical models.
"""

from repro.reliability.binomial import (
    binomial_pmf,
    binomial_tail,
    log_binomial_pmf,
    poisson_tail,
)
from repro.reliability.fit import (
    HOURS_PER_BILLION,
    fit_from_interval_probability,
    fit_to_mttf_hours,
    interval_probability_from_fit,
    mttf_seconds_from_interval_probability,
)
from repro.reliability.eccmodel import ECCCacheModel, table2_rows
from repro.reliability.sudokumodel import SuDokuReliabilityModel
from repro.reliability.baselinemodel import (
    cppc_model,
    hiecc_model,
    raid6_model,
    twodp_model,
)
from repro.reliability.sram import sram_vmin_table
from repro.reliability.montecarlo import (
    CampaignResult,
    run_engine_campaign,
    run_group_campaign,
)
from repro.reliability.raresim import ConditionalGroupSimulator, estimate_fit
from repro.reliability.scenario import (
    SCHEMES,
    BurstSpec,
    FaultScenario,
    StuckSpec,
    build_scheme,
    run_scenario_campaign,
)
from repro.reliability.designspace import (
    DesignPoint,
    cheapest_meeting_target,
    enumerate_design_space,
    pareto_front,
)

__all__ = [
    "binomial_pmf",
    "binomial_tail",
    "log_binomial_pmf",
    "poisson_tail",
    "HOURS_PER_BILLION",
    "fit_from_interval_probability",
    "fit_to_mttf_hours",
    "interval_probability_from_fit",
    "mttf_seconds_from_interval_probability",
    "ECCCacheModel",
    "table2_rows",
    "SuDokuReliabilityModel",
    "cppc_model",
    "hiecc_model",
    "raid6_model",
    "twodp_model",
    "sram_vmin_table",
    "CampaignResult",
    "run_engine_campaign",
    "run_group_campaign",
    "ConditionalGroupSimulator",
    "estimate_fit",
    "SCHEMES",
    "BurstSpec",
    "StuckSpec",
    "FaultScenario",
    "build_scheme",
    "run_scenario_campaign",
    "DesignPoint",
    "cheapest_meeting_target",
    "enumerate_design_space",
    "pareto_front",
]
