"""Parameter sensitivity: which knob moves SuDoku's reliability most?

The paper sweeps one axis at a time (Tables VIII, IX, X).  This module
unifies those sweeps into a tornado analysis around the nominal design
point: each parameter is perturbed to a low and high value while the
rest stay nominal, and the induced swing in SuDoku-Z FIT is reported in
orders of magnitude.  The result ranks the design's exposures --
thermal stability utterly dominates, scrub interval is the strongest
*actuatable* knob, group size and SDR cap are second-order -- and gives
deployments a principled error budget.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional, Tuple

from repro.reliability.sudokumodel import SuDokuReliabilityModel
from repro.sttram.variation import effective_ber


@dataclass(frozen=True)
class OperatingPoint:
    """The physical + architectural design point under study."""

    delta_mean: float = 35.0
    sigma_fraction: float = 0.10
    scrub_interval_s: float = 0.020
    group_size: int = 512
    num_lines: int = 1 << 20
    sdr_max_mismatches: int = 6
    ecc_t: int = 1

    def fit(self) -> float:
        """SuDoku-Z FIT at this point."""
        ber = effective_ber(
            self.delta_mean,
            self.sigma_fraction * self.delta_mean,
            self.scrub_interval_s,
        )
        line_bits = 553 if self.ecc_t == 1 else 563
        model = SuDokuReliabilityModel(
            ber=ber,
            line_bits=line_bits,
            group_size=self.group_size,
            num_lines=self.num_lines,
            interval_s=self.scrub_interval_s,
            sdr_max_mismatches=self.sdr_max_mismatches,
            ecc_t=self.ecc_t,
        )
        return model.fit_z()


@dataclass(frozen=True)
class SensitivityEntry:
    """One tornado bar."""

    parameter: str
    low_label: str
    high_label: str
    fit_low: float
    fit_high: float
    fit_nominal: float

    @property
    def swing_orders(self) -> float:
        """log10 span of FIT across the parameter's range."""
        low = max(min(self.fit_low, self.fit_high), 1e-300)
        high = max(self.fit_low, self.fit_high, 1e-300)
        return math.log10(high) - math.log10(low)


#: parameter name -> (low perturbation, high perturbation) as
#: (label, OperatingPoint transformer) pairs.
Perturbation = Tuple[str, Callable[[OperatingPoint], OperatingPoint]]

DEFAULT_PERTURBATIONS: Dict[str, Tuple[Perturbation, Perturbation]] = {
    "thermal stability (delta)": (
        ("34", lambda p: replace(p, delta_mean=34.0)),
        ("36", lambda p: replace(p, delta_mean=36.0)),
    ),
    "process variation (sigma)": (
        ("8%", lambda p: replace(p, sigma_fraction=0.08)),
        ("12%", lambda p: replace(p, sigma_fraction=0.12)),
    ),
    "scrub interval": (
        ("10ms", lambda p: replace(p, scrub_interval_s=0.010)),
        ("40ms", lambda p: replace(p, scrub_interval_s=0.040)),
    ),
    "RAID-Group size": (
        ("256", lambda p: replace(p, group_size=256)),
        ("1024", lambda p: replace(p, group_size=1024)),
    ),
    "cache size": (
        ("32MB", lambda p: replace(p, num_lines=1 << 19)),
        ("128MB", lambda p: replace(p, num_lines=1 << 21)),
    ),
    "SDR mismatch cap": (
        ("4", lambda p: replace(p, sdr_max_mismatches=4)),
        ("8", lambda p: replace(p, sdr_max_mismatches=8)),
    ),
}


def tornado(
    nominal: Optional[OperatingPoint] = None,
    perturbations: Optional[Dict[str, Tuple[Perturbation, Perturbation]]] = None,
) -> List[SensitivityEntry]:
    """Tornado analysis: entries sorted by FIT swing, largest first."""
    point = nominal if nominal is not None else OperatingPoint()
    sweeps = perturbations if perturbations is not None else DEFAULT_PERTURBATIONS
    fit_nominal = point.fit()
    entries = []
    for parameter, ((low_label, low_fn), (high_label, high_fn)) in sweeps.items():
        entries.append(
            SensitivityEntry(
                parameter=parameter,
                low_label=low_label,
                high_label=high_label,
                fit_low=low_fn(point).fit(),
                fit_high=high_fn(point).fit(),
                fit_nominal=fit_nominal,
            )
        )
    entries.sort(key=lambda entry: entry.swing_orders, reverse=True)
    return entries
