"""Composable fault scenarios: transient + burst + stuck-at campaigns.

The i.i.d. thermal-flip model of :mod:`repro.reliability.montecarlo` is
the paper's primary workload, but real memories also see *bursts*
(multi-bit upsets along physically adjacent cells) and *permanent*
stuck-at faults -- the transient/permanent mixes where per-line ECC
schemes diverge sharply.  This module defines:

* :class:`FaultScenario` -- a declarative, JSON-serializable mix of the
  three fault sources (transient BER, a :class:`BurstSpec`, a
  :class:`StuckSpec`), the single unit that flows through the CLI,
  checkpoints, and the sharded runner;
* :func:`build_scheme` -- one factory for every protection scheme the
  repo models (SuDoku-X/Y/Z and the five baselines), at a compact
  shared geometry so degradation numbers are comparable;
* :func:`run_scenario_campaign` -- the inject-scrub-heal loop under a
  mixed scenario.

Determinism model
-----------------

Unlike the Monte-Carlo loop (one sequential RNG stream, whose *state*
must be checkpointed), scenario campaigns derive every random quantity
from a ``SeedSequence`` tree keyed by **global interval index**:

* child ``(0,)`` -- the content fill seed;
* child ``(1,)`` -- the stuck-at fault map;
* child ``(2 + i,)`` -- interval ``i``'s transient + burst draws (and,
  via :func:`repro.parallel.sharding.interval_python_seed`, interval
  ``i``'s chaos injector).

Because ``SeedSequence(seed, spawn_key=(k,))`` is a pure function of
``(seed, k)``, a shard that owns intervals ``[a, b)`` consumes exactly
the randomness the serial run consumes for those intervals, and a
checkpoint needs **no RNG state at all** -- resuming at interval ``i``
just re-derives child ``(2 + i,)``.  That is what makes the sharded,
resumed, and sparse-scrub variants of a scenario campaign bit-identical
to the serial dense run (the acceptance property
``tests/reliability/test_scenario.py`` pins down).

The interval-boundary invariant extends to permanent faults: after each
interval's heal, every stored word equals its golden value *as read
through the stuck bits* (``array.residual_vector == 0``), and parity
metadata is re-canonicalized on failure/chaos intervals -- so the state
entering interval ``i`` is a pure function of the scenario config, not
of execution history.

See docs/faultmodels.md for the spec format and semantics.
"""

from __future__ import annotations

import json
import time
from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.engine import build_engine
from repro.core.outcomes import Outcome, is_failure_label
from repro.obs import NULL_PROGRESS, Telemetry, resolve_telemetry
from repro.parallel.sharding import interval_generator, interval_python_seed
from repro.reliability.montecarlo import (
    INTERVAL_BUCKETS,
    CampaignResult,
    _dense_walk,
    _fill_random_through_engine,
    _require_scrub_mode,
    heal,
)
from repro.resilience.chaos import ChaosInjector, ChaosPolicy
from repro.resilience.checkpoint import (
    Checkpointer,
    Deadline,
    build_payload,
    require_config_match,
)
from repro.sttram.array import STTRAMArray
from repro.sttram.faults import (
    BurstFaultInjector,
    PermanentFaultMap,
    TransientFaultInjector,
    burst_line_masks,
)

#: Every scheme name :func:`build_scheme` accepts: the three SuDoku
#: levels plus the five baseline protection schemes.
SCHEMES: Tuple[str, ...] = (
    "X", "Y", "Z", "eccline", "cppc", "raid6", "twodp", "hiecc",
)

_CODE_CACHE: Dict[str, object] = {}


def _line_code():
    """Shared small BCH line code (building the generator poly is slow)."""
    if "line" not in _CODE_CACHE:
        from repro.coding.bch import BCH

        _CODE_CACHE["line"] = BCH(64, 3, m=8)
    return _CODE_CACHE["line"]


def _region_code():
    """Shared small BCH region code for the Hi-ECC geometry."""
    if "region" not in _CODE_CACHE:
        from repro.coding.bch import BCH

        _CODE_CACHE["region"] = BCH(256, 3, m=9)
    return _CODE_CACHE["region"]


@dataclass(frozen=True)
class BurstSpec:
    """Geometry of the burst/MBU fault source (see ``BurstFaultInjector``).

    ``length_pmf`` maps burst length (bits) to probability; ``span``,
    ``alignment`` and ``multiplicity`` shape where events land;
    ``interleave`` is the logical-lines-per-physical-row degree (1 =
    no interleaving, the per-line-ECC worst case).
    """

    rate: float
    length_pmf: Tuple[Tuple[int, float], ...]
    span: Optional[int] = None
    alignment: int = 1
    multiplicity: int = 1
    interleave: int = 1

    def __post_init__(self) -> None:
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError("burst rate must be a probability")
        if not self.length_pmf:
            raise ValueError("length_pmf must not be empty")
        for length, probability in self.length_pmf:
            if not isinstance(length, int) or length <= 0:
                raise ValueError(f"burst length must be a positive int: {length}")
            if probability < 0:
                raise ValueError("length_pmf probabilities must be >= 0")
        if sum(p for _, p in self.length_pmf) <= 0:
            raise ValueError("length_pmf probabilities must sum to > 0")
        for name in ("alignment", "multiplicity", "interleave"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")
        if self.span is not None and self.span <= 0:
            raise ValueError("span must be positive")

    @classmethod
    def fixed_length(cls, rate: float, length: int, **kwargs) -> "BurstSpec":
        """Degenerate PMF: every burst has the same length."""
        return cls(rate=rate, length_pmf=((length, 1.0),), **kwargs)

    def pmf_dict(self) -> Dict[int, float]:
        return dict(self.length_pmf)

    def as_dict(self) -> Dict[str, object]:
        return {
            "rate": self.rate,
            "length_pmf": {str(k): v for k, v in self.length_pmf},
            "span": self.span,
            "alignment": self.alignment,
            "multiplicity": self.multiplicity,
            "interleave": self.interleave,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "BurstSpec":
        pmf = payload.get("length_pmf")
        if not isinstance(pmf, dict):
            raise ValueError("burst spec needs a length_pmf mapping")
        length_pmf = tuple(
            sorted((int(k), float(v)) for k, v in pmf.items())
        )
        span = payload.get("span")
        return cls(
            rate=float(payload.get("rate", 0.0)),
            length_pmf=length_pmf,
            span=int(span) if span is not None else None,
            alignment=int(payload.get("alignment", 1)),
            multiplicity=int(payload.get("multiplicity", 1)),
            interleave=int(payload.get("interleave", 1)),
        )


@dataclass(frozen=True)
class StuckSpec:
    """Stuck-at permanent-fault source: a parts-per-million bit density.

    The map itself is re-derived from the campaign seed (SeedSequence
    child ``(1,)``), never serialized -- the density *is* the spec.
    Polarity is uniform over stuck-at-0/stuck-at-1.  A line collecting
    two or more stuck bits overwhelms ECC-1 permanently; at realistic
    ppm densities this is vanishingly rare, and when it happens it is
    an honest (deterministic) uncorrectable, not an artifact.
    """

    ppm: float

    def __post_init__(self) -> None:
        if self.ppm < 0:
            raise ValueError("stuck-at ppm must be non-negative")
        if self.ppm * 1e-6 > 1.0:
            raise ValueError("stuck-at ppm exceeds one fault per bit")

    def as_dict(self) -> Dict[str, object]:
        return {"ppm": self.ppm}

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "StuckSpec":
        return cls(ppm=float(payload.get("ppm", 0.0)))


@dataclass(frozen=True)
class FaultScenario:
    """A mixed fault profile: transient + burst + stuck-at sources.

    Any source may be absent (``transient_ber=0``, ``burst=None``,
    ``stuck=None``); the all-absent scenario is legal and injects
    nothing.  Serializes to/from plain JSON for ``--scenario`` files,
    checkpoint config fingerprints, and the sharded runner.
    """

    transient_ber: float = 0.0
    burst: Optional[BurstSpec] = None
    stuck: Optional[StuckSpec] = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.transient_ber <= 1.0:
            raise ValueError("transient_ber must be a probability")

    @property
    def active(self) -> bool:
        """Does this scenario inject anything at all?"""
        return (
            self.transient_ber > 0
            or (self.burst is not None and self.burst.rate > 0)
            or (self.stuck is not None and self.stuck.ppm > 0)
        )

    def as_dict(self) -> Dict[str, object]:
        return {
            "transient_ber": self.transient_ber,
            "burst": self.burst.as_dict() if self.burst else None,
            "stuck": self.stuck.as_dict() if self.stuck else None,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "FaultScenario":
        if not isinstance(payload, dict):
            raise ValueError("scenario payload must be a JSON object")
        burst = payload.get("burst")
        stuck = payload.get("stuck")
        return cls(
            transient_ber=float(payload.get("transient_ber", 0.0)),
            burst=BurstSpec.from_dict(burst) if burst else None,
            stuck=StuckSpec.from_dict(stuck) if stuck else None,
        )

    @classmethod
    def load(cls, path: str) -> "FaultScenario":
        """Parse a ``--scenario`` JSON file."""
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_dict(json.load(handle))

    # -- seeded samplers (numpy, campaign path) --------------------------------

    def build_stuck_map(
        self, num_lines: int, line_bits: int, rng
    ) -> Optional[PermanentFaultMap]:
        """Sample the stuck-at map from a numpy generator (child ``(1,)``)."""
        if self.stuck is None or self.stuck.ppm <= 0:
            return None
        return PermanentFaultMap.random(
            num_lines, line_bits, self.stuck.ppm, rng
        )

    def build_burst_injector(
        self, line_bits: int, rng, backend=None
    ) -> Optional[BurstFaultInjector]:
        """Burst injector on a per-interval numpy generator."""
        if self.burst is None or self.burst.rate <= 0:
            return None
        return BurstFaultInjector(
            line_bits,
            self.burst.rate,
            self.burst.pmf_dict(),
            span=self.burst.span,
            alignment=self.burst.alignment,
            multiplicity=self.burst.multiplicity,
            interleave=self.burst.interleave,
            rng=rng,
            backend=backend,
        )

    # -- seeded samplers (stdlib Random, raresim path) -------------------------

    def sample_stuck_map_py(
        self, rng, num_lines: int, line_bits: int
    ) -> Optional[PermanentFaultMap]:
        """Stuck-at map drawn from a stdlib ``random.Random``.

        The rare-event simulator keeps *all* its randomness on one
        python stream so its checkpoints stay a single RNG state; this
        sampler lives on that stream rather than the numpy tree.
        """
        if self.stuck is None or self.stuck.ppm <= 0:
            return None
        from repro.sttram.faults import FaultKind

        total_bits = num_lines * line_bits
        count = _binomial_draw_py(rng, total_bits, self.stuck.ppm * 1e-6)
        fault_map = PermanentFaultMap(line_bits)
        if count == 0:
            return fault_map
        for flat in sorted(rng.sample(range(total_bits), count)):
            line_index, bit_position = divmod(flat, line_bits)
            kind = (
                FaultKind.STUCK_AT_ONE
                if rng.getrandbits(1)
                else FaultKind.STUCK_AT_ZERO
            )
            fault_map.add(line_index, bit_position, kind)
        return fault_map

    def sample_burst_vectors_py(
        self, rng, num_lines: int, line_bits: int
    ) -> Dict[int, int]:
        """One interval's burst masks drawn from a stdlib ``random.Random``."""
        if self.burst is None or self.burst.rate <= 0:
            return {}
        spec = self.burst
        count = _binomial_draw_py(rng, num_lines, spec.rate)
        vectors: Dict[int, int] = {}
        if count == 0:
            return vectors
        span = (
            spec.span
            if spec.span is not None
            else line_bits * spec.interleave
        )
        lengths = [length for length, _ in spec.length_pmf]
        total = sum(p for _, p in spec.length_pmf)
        cumulative: List[float] = []
        running = 0.0
        for _, probability in spec.length_pmf:
            running += probability / total
            cumulative.append(running)
        cumulative[-1] = 1.0
        for base in sorted(rng.sample(range(num_lines), count)):
            u = rng.random()
            length = lengths[-1]
            for candidate, bound in zip(lengths, cumulative):
                if u <= bound:
                    length = candidate
                    break
            slots = (span - length) // spec.alignment + 1
            start = rng.randrange(slots) * spec.alignment
            masks = burst_line_masks(
                line_bits, start, length, interleave=spec.interleave
            )
            for row in range(spec.multiplicity):
                row_base = base + row * spec.interleave
                for offset, mask in masks:
                    line_index = row_base + offset
                    if line_index >= num_lines:
                        continue
                    vectors[line_index] = vectors.get(line_index, 0) | mask
        return vectors


def _binomial_draw_py(rng, n: int, p: float) -> int:
    """Exact inverse-CDF binomial draw from a stdlib ``random.Random``.

    The stdlib RNG has no binomial sampler; this walks the CDF with the
    stable term recurrence, which is O(draw) -- fine for the small
    ``n * p`` regimes the scenario samplers operate in (a few faults
    per group/interval).  ``(1-p)^n`` underflowing to zero would need
    ``n * p`` in the thousands, far outside those regimes.
    """
    if n <= 0 or p <= 0.0:
        return 0
    if p >= 1.0:
        return n
    u = rng.random()
    term = (1.0 - p) ** n
    cdf = term
    k = 0
    ratio = p / (1.0 - p)
    while u > cdf and k < n:
        term *= (n - k) / (k + 1) * ratio
        k += 1
        cdf += term
    return k


def build_scheme(name: str, group_size: int = 8, backend: Optional[str] = None):
    """Build any protection scheme at a compact comparable geometry.

    SuDoku-X/Y/Z, 2DP and RAID-6 use ``group_size**2`` lines of the
    SuDoku line format (``group_size**2`` is required for SuDoku-Z's
    skewed second hash); ECC-line and CPPC use ``group_size**2`` lines
    of a 64-bit-payload BCH / CRC format (the narrow width keeps the
    per-line decoders fast enough for campaign loops); Hi-ECC covers
    the same payload volume with ``group_size**2`` 32-byte regions.
    Every scheme exposes the campaign surface (``array``,
    ``write_data``, ``scrub_frames``, ``account_bulk_clean``), so
    :func:`run_scenario_campaign` treats them uniformly.  ``backend``
    routes bulk operations through a kernel backend where the scheme
    supports one (bit-identical by contract).
    """
    if group_size < 2:
        raise ValueError("group_size must be >= 2")
    num_lines = group_size * group_size
    scheme = _build_scheme_inner(name, group_size, num_lines)
    if backend is not None:
        setter = getattr(scheme, "set_backend", None)
        if setter is not None:
            setter(backend)
    return scheme


def _build_scheme_inner(name: str, group_size: int, num_lines: int):
    if name in ("X", "Y", "Z"):
        from repro.core.linecodec import LineCodec

        codec = LineCodec()
        array = STTRAMArray(num_lines, codec.stored_bits)
        return build_engine(name, array, group_size=group_size, codec=codec)
    if name == "twodp":
        from repro.baselines.twodp import TwoDPCache
        from repro.core.linecodec import LineCodec

        codec = LineCodec()
        array = STTRAMArray(num_lines, codec.stored_bits)
        return TwoDPCache(array, group_size=group_size, codec=codec)
    if name == "raid6":
        from repro.baselines.raid6 import RAID6Cache

        return RAID6Cache(num_lines, group_size=group_size)
    if name == "eccline":
        from repro.baselines.eccline import ECCLineCache

        code = _line_code()
        return ECCLineCache(
            num_lines, t=code.t, data_bits=code.k, code=code
        )
    if name == "cppc":
        from repro.baselines.cppc import CPPCCache

        return CPPCCache(num_lines, data_bits=64)
    if name == "hiecc":
        from repro.baselines.hiecc import HiECCCache

        code = _region_code()
        return HiECCCache(
            num_lines, region_bytes=32, t=code.t, code=code
        )
    raise ValueError(f"unknown scheme {name!r}; expected one of {SCHEMES}")


def _setup_scheme(
    scheme: str,
    group_size: int,
    scenario: FaultScenario,
    seed: int,
    backend: Optional[str] = None,
):
    """Build + stuck-attach + fill + canonicalize: pure in (config, seed).

    Order matters: the stuck map attaches *before* content fill so the
    fill writes store through the stuck bits (golden keeps the intent),
    and parities are canonicalized last from ECC-corrected words --
    giving the reference boundary state every interval returns to.
    """
    engine = build_scheme(scheme, group_size, backend=backend)
    array = engine.array
    stuck_map = scenario.build_stuck_map(
        array.num_lines, array.line_bits, interval_generator(seed, 1)
    )
    if stuck_map is not None:
        array.attach_permanent_faults(stuck_map)
    fill_seed = int(interval_generator(seed, 0).integers(0, 2 ** 63))
    _fill_random_through_engine(engine, fill_seed)
    initialize = getattr(engine, "initialize_parities", None)
    if initialize is not None:
        initialize()
    return engine


def run_scenario_campaign(
    scheme: str,
    scenario: FaultScenario,
    intervals: int,
    group_size: int = 8,
    interval_s: float = 0.020,
    *,
    seed: int = 0,
    interval_start: int = 0,
    telemetry: Optional[Telemetry] = None,
    progress=NULL_PROGRESS,
    chaos_policy: Optional[ChaosPolicy] = None,
    chaos_seed: int = 0,
    checkpointer: Optional[Checkpointer] = None,
    deadline: Optional[Deadline] = None,
    scrub_mode: str = "sparse",
    backend: Optional[str] = None,
) -> CampaignResult:
    """Inject-scrub-heal under a mixed fault scenario.

    Runs global intervals ``[interval_start, interval_start + intervals)``
    of the campaign defined by ``(scheme, group_size, scenario, seed)``;
    a shard passes its slice via ``interval_start``, the serial run
    passes 0.  Each interval derives its own randomness from SeedSequence
    child ``(2 + global_index,)`` (see the module docstring), so results
    are invariant under sharding and checkpoints carry no RNG state.

    ``chaos_policy`` composes: interval ``i`` gets a fresh
    :class:`ChaosInjector` seeded from ``(chaos_seed, i)``, so chaos
    events are also shard- and resume-invariant.  ``scrub_mode`` selects
    the sparse fast path (default) or the dense audit walk; outcome
    counters are bit-identical between them -- permanently-dirty
    stuck lines stay in the dirty set, which is what keeps the sparse
    visit schedule complete.
    """
    _require_scrub_mode(scrub_mode)
    if scheme not in SCHEMES:
        raise ValueError(f"unknown scheme {scheme!r}; expected one of {SCHEMES}")
    if intervals < 0:
        raise ValueError("intervals must be non-negative")
    if interval_start < 0:
        raise ValueError("interval_start must be non-negative")
    tel = resolve_telemetry(telemetry)
    engine = _setup_scheme(scheme, group_size, scenario, seed, backend)
    kernels = getattr(engine, "backend", None)
    if telemetry is not None:
        attach = getattr(engine, "attach_telemetry", None)
        if attach is not None:
            attach(telemetry)
    array = engine.array
    m_intervals = tel.metrics.counter(
        "scenario_intervals_total", "Scenario campaign intervals completed."
    )
    m_outcomes = tel.metrics.counter(
        "scenario_outcomes_total",
        "Line outcomes accumulated across scenario intervals.",
        labels=("outcome",),
    )
    m_interval_time = tel.metrics.histogram(
        "scenario_interval_seconds",
        "Wall-clock time per scenario interval (inject + scrub + heal).",
        buckets=INTERVAL_BUCKETS,
    )
    config_fingerprint: Dict[str, object] = {
        "kind": "scenario",
        "scheme": scheme,
        "group_size": group_size,
        "interval_s": interval_s,
        "seed": seed,
        "interval_start": interval_start,
        "intervals": intervals,
        "lines": array.num_lines,
        "line_bits": array.line_bits,
        "scenario": scenario.as_dict(),
        "chaos": chaos_policy.as_dict() if chaos_policy is not None else None,
        "chaos_seed": chaos_seed if chaos_policy is not None else None,
    }
    result = CampaignResult(
        intervals=intervals,
        ber=scenario.transient_ber,
        interval_s=interval_s,
        lines=array.num_lines,
    )
    start = 0
    resume = checkpointer.resume if checkpointer is not None else None
    if resume is not None:
        require_config_match(resume, config_fingerprint)
        start = int(resume["completed"])
        aggregates = resume["aggregates"]
        result.outcomes.update(aggregates.get("outcomes", {}))
        result.interval_failures = int(aggregates.get("interval_failures", 0))
        result.metadata.update(aggregates.get("metadata", {}))

    def boundary_snapshot(completed: int) -> Dict[str, object]:
        aggregates = {
            "outcomes": dict(result.outcomes),
            "interval_failures": result.interval_failures,
            "metadata": dict(result.metadata),
        }
        # No RNG block: every stream re-derives from (seed, index).
        return build_payload(
            "scenario", config_fingerprint, completed, aggregates, {}
        )

    completed = start
    snapshot = boundary_snapshot(start)
    tracer = tel.tracer
    with tracer.span(
        "scenario_campaign", scheme=scheme, intervals=intervals,
        lines=array.num_lines,
    ):
        try:
            for relative in range(start, intervals):
                started = time.perf_counter() if tel.enabled else 0.0
                index = interval_start + relative
                stream = interval_generator(seed, 2 + index)
                chaos = (
                    ChaosInjector(
                        chaos_policy,
                        seed=interval_python_seed(chaos_seed, index),
                    )
                    if chaos_policy is not None
                    else None
                )
                with tracer.span("phase_inject"):
                    if chaos is not None and hasattr(engine, "_tables"):
                        # Metadata chaos needs a parity-table surface;
                        # schemes without one (plain per-line ECC) still
                        # see the schedule chaos below.
                        result.metadata.update(chaos.corrupt_metadata(engine))
                    if scenario.transient_ber > 0:
                        TransientFaultInjector(
                            array.line_bits, scenario.transient_ber, stream,
                            backend=kernels,
                        ).inject_frames(array)
                    burst = scenario.build_burst_injector(
                        array.line_bits, stream, backend=kernels
                    )
                    if burst is not None:
                        burst.inject_frames(array)
                    # The dirty set is the union of this interval's hits
                    # and the permanently-dirty stuck lines.
                    dirty = array.dirty_frames()
                    visits = dirty
                    if chaos is not None:
                        visits, applied = chaos.perturb_visits(visits)
                        result.metadata.update(applied)
                with tracer.span("phase_scrub"):
                    if scrub_mode == "dense":
                        counts = engine.scrub_frames(
                            _dense_walk(array.num_lines, dirty, visits)
                        )
                    else:
                        sparse_counts = Counter(engine.scrub_frames(visits))
                        bulk_clean = array.num_lines - len(dirty)
                        account = getattr(engine, "account_bulk_clean", None)
                        if account is not None:
                            account(bulk_clean)
                        sparse_counts[Outcome.CLEAN.value] += bulk_clean
                        counts = dict(sparse_counts)
                result.outcomes.update(counts)
                failed = any(
                    count and is_failure_label(label)
                    for label, count in counts.items()
                )
                with tracer.span("phase_correct"):
                    if failed:
                        result.interval_failures += 1
                    if failed or chaos is not None:
                        # Re-canonicalize: heal to the boundary state
                        # (stored == golden through stuck bits) and
                        # restore ground-truth parities, so interval
                        # i + 1 starts from the pure-function-of-config
                        # state regardless of what this interval broke.
                        heal(array)
                        initialize = getattr(
                            engine, "initialize_parities", None
                        )
                        if initialize is not None:
                            initialize()
                    else:
                        heal(array)
                    if chaos is not None:
                        audit = getattr(engine, "audit_metadata", None)
                        if audit is not None:
                            audit_report = audit(repair=True)
                            for key in (
                                "crc_faults", "recompute_faults", "rebuilt",
                            ):
                                if audit_report.get(key):
                                    result.metadata["residual_" + key] += (
                                        audit_report[key]
                                    )
                completed += 1
                if tel.enabled:
                    m_intervals.inc()
                    for label, count in counts.items():
                        m_outcomes.labels(outcome=label).inc(count)
                    m_interval_time.observe(time.perf_counter() - started)
                snapshot = boundary_snapshot(completed)
                if checkpointer is not None and checkpointer.due(completed):
                    checkpointer.save(snapshot)
                if deadline is not None and deadline.expired():
                    result.truncated = True
                    result.stop_reason = deadline.reason
                    break
                progress.update()
        except KeyboardInterrupt:
            result.truncated = True
            result.stop_reason = "interrupted"
            completed = int(snapshot["completed"])
            aggregates = snapshot["aggregates"]
            result.outcomes = Counter(aggregates["outcomes"])
            result.interval_failures = int(aggregates["interval_failures"])
            result.metadata = Counter(aggregates["metadata"])
    if checkpointer is not None:
        checkpointer.save(snapshot)
    result.intervals = completed
    progress.finish()
    return result
