"""Analytical failure models of SuDoku-X, -Y, and -Z.

The models compose per-line binomial fault statistics into group-level
and cache-level failure probabilities following the *functional* engine's
correctability rules (every rule here is validated against Monte-Carlo
fault injection on the real engines in the test suite):

**SuDoku-X** fails a group when two or more lines have multi-bit (2+)
faults -- RAID-4 can rebuild only one.

**SuDoku-Y** (X + SDR) fails a group when:

* two or more *heavy* lines (3+ faults each) coexist -- flipping one
  mismatch bit still leaves 2+ faults, so SDR cannot resurrect either;
* two 2-fault lines have *identical* fault positions (Fig. 3c) -- the
  parity mismatch vanishes;
* a 2-fault line's faults are *contained* in a partner 3-fault line's
  (Fig. 4's failing case);
* the group's mismatch exceeds the SDR cap (more than
  ``sdr_max_mismatches`` candidate positions, e.g. four 2-fault lines).

**SuDoku-Z** fails only when at least two lines are unrepairable under
*both* hashes.  The dominant mode is a pair of heavy lines sharing a
Hash-1 group, each of which also meets another blocker in its (disjoint)
Hash-2 group.

**SDC** (all levels): a line with 7 faults can be "corrected" by ECC-1
into an 8-fault pattern that CRC-31 misdetects with probability 2^-31;
8+-fault lines hit the same misdetection floor directly (Table III).

The paper's own analytical numbers for Y (286M FIT DUE) are more
pessimistic than these first-principles compositions; EXPERIMENTS.md
quantifies the deltas.  The X and Z-without-SDR closed forms land within
~10-20 % of the paper's figures, and the ordering/magnitude structure of
Fig. 7 (X: seconds, Y: hours-days, Z: astronomically beyond ECC-6) is
reproduced throughout.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict

from repro.reliability.binomial import (
    binomial_pmf,
    binomial_tail,
    complement_power,
)
from repro.reliability.fit import (
    fit_from_interval_probability,
    mttf_seconds_from_interval_probability,
)


@dataclass(frozen=True)
class SuDokuReliabilityModel:
    """Closed-form reliability of a SuDoku-protected cache.

    :param ber: per-bit flip probability within one scrub interval.
    :param line_bits: stored bits per line (553: 512 data + 31 CRC + 10 ECC).
    :param group_size: RAID-Group size in lines.
    :param num_lines: lines in the cache.
    :param interval_s: scrub interval.
    :param crc_misdetect: probability CRC-31 misses an 8+-bit pattern.
    :param sdr_max_mismatches: SDR gives up beyond this many mismatches.
    """

    ber: float
    line_bits: int = 553
    group_size: int = 512
    num_lines: int = 1 << 20
    interval_s: float = 0.020
    crc_misdetect: float = 2.0 ** -31
    sdr_max_mismatches: int = 6
    #: Per-line ECC correction strength: 1 for the paper's ECC-1 design,
    #: 2 for the section VII-G ECC-2 enhancement (pair with
    #: ``line_bits=563``, the ECC-2 stored width).
    ecc_t: int = 1

    def __post_init__(self) -> None:
        if not 0.0 <= self.ber <= 1.0:
            raise ValueError("ber must be a probability")
        if self.num_lines % self.group_size:
            raise ValueError("group size must tile the cache")
        if self.ecc_t < 1:
            raise ValueError("ecc_t must be at least 1")
        if (self.ecc_t + 1) * 2 > self.sdr_max_mismatches:
            raise ValueError(
                "SDR cap too small to ever resurrect a pair of "
                f"{self.ecc_t + 1}-fault lines"
            )

    @classmethod
    def for_ecc2(cls, ber: float, **overrides) -> "SuDokuReliabilityModel":
        """Model of the ECC-2 variant (section VII-G): 563-bit lines,
        light lines = 3 faults, heavy = 4+."""
        overrides.setdefault("line_bits", 563)
        return cls(ber=ber, ecc_t=2, **overrides)

    # -- per-line fault statistics -------------------------------------------------

    def p_exact(self, k: int) -> float:
        """P[line has exactly k faults] in one interval."""
        return binomial_pmf(self.line_bits, k, self.ber)

    def p_at_least(self, k: int) -> float:
        """P[line has k or more faults] in one interval."""
        return binomial_tail(self.line_bits, k, self.ber)

    @property
    def p_multi(self) -> float:
        """P[line beyond per-line ECC] (ecc_t + 1 or more faults)."""
        return self.p_at_least(self.ecc_t + 1)

    @property
    def p_light(self) -> float:
        """P[line with exactly ecc_t + 1 faults] -- SDR-resurrectable."""
        return self.p_exact(self.ecc_t + 1)

    @property
    def p_heavy(self) -> float:
        """P[heavy line] (ecc_t + 2 or more faults) -- beyond SDR."""
        return self.p_at_least(self.ecc_t + 2)

    @property
    def num_groups(self) -> int:
        """RAID-Groups per hash."""
        return self.num_lines // self.group_size

    def expected_multi_lines(self) -> float:
        """Expected multi-bit-faulty lines per interval (paper: ~4)."""
        return self.num_lines * self.p_multi

    # -- overlap geometry -------------------------------------------------------------

    @property
    def q_full_overlap_22(self) -> float:
        """P[two light lines chose identical fault positions] (Fig. 3c).

        For ECC-t, a light line carries t+1 faults; full overlap of two
        independent (t+1)-subsets of the line has probability
        1 / C(line_bits, t+1).
        """
        return 1.0 / _choose(self.line_bits, self.ecc_t + 1)

    @property
    def q_containment_23(self) -> float:
        """P[a light line's faults are contained in a heavy partner's].

        Containment of a (t+1)-fault set within an independent
        (t+2)-fault set: C(t+2, t+1) / C(line_bits, t+1) (Fig. 4's
        failing case at t = 1).
        """
        return (self.ecc_t + 2) / _choose(self.line_bits, self.ecc_t + 1)

    # -- SuDoku-X ----------------------------------------------------------------------

    def group_fail_x(self) -> float:
        """P[group has 2+ multi-bit lines] -- RAID-4 alone defeated."""
        return binomial_tail(self.group_size, 2, self.p_multi)

    def cache_fail_x(self) -> float:
        """Per-interval DUE probability of the whole SuDoku-X cache."""
        return complement_power(self.group_fail_x(), self.num_groups)

    def mttf_x_seconds(self) -> float:
        """MTTF of SuDoku-X (paper: 3.71 s)."""
        return mttf_seconds_from_interval_probability(
            self.cache_fail_x(), self.interval_s
        )

    def fit_x(self) -> float:
        """Total FIT of SuDoku-X (DUE dominated)."""
        return fit_from_interval_probability(
            self.cache_fail_x(), self.interval_s
        ) + self.sdc_fit()

    # -- SuDoku-Y ----------------------------------------------------------------------

    def group_fail_y_components(self) -> Dict[str, float]:
        """Per-mode group failure probabilities of SuDoku-Y.

        Written for general ``ecc_t``: a *light* line carries exactly
        t+1 faults (resurrectable by flip + ECC-t), a *heavy* line t+2
        or more (never resurrectable).  The SDR mismatch cap blocks any
        group whose multi-bit lines' faults sum past
        ``sdr_max_mismatches``.
        """
        G = self.group_size
        cap = self.sdr_max_mismatches
        light = self.ecc_t + 1
        pairs = G * (G - 1) / 2.0
        p_light = self.p_light
        p_heavy_exact = self.p_exact(self.ecc_t + 2)
        components = {
            # two or more heavy lines: SDR cannot resurrect either.
            "heavy_pair": binomial_tail(G, 2, self.p_heavy),
            # two light lines with identical fault positions (Fig. 3c).
            "full_overlap_22": pairs * p_light * p_light * self.q_full_overlap_22,
            # a light line contained within a heavy partner (Fig. 4).
            "containment_23": pairs * 2.0 * p_light * p_heavy_exact
            * self.q_containment_23,
            # all-light mismatch cap: ceil((cap+1)/light_faults) light
            # lines exceed the cap (4 lines at t=1, 3 lines at t=2).
            "mismatch_cap": binomial_tail(
                G, cap // light + 1, self.p_multi
            ),
            # a light line paired with one heavy enough to blow the cap
            # on its own: partner faults > cap - (t+1).
            "pair_light_capping_heavy": pairs * 2.0 * p_light
            * self.p_at_least(max(cap - light + 1, self.ecc_t + 2)),
        }
        # Two light lines plus a heavy third blow the cap whenever three
        # light lines alone would not (otherwise mismatch_cap covers it).
        if 3 * light <= cap < 2 * light + self.ecc_t + 2:
            components["mismatch_cap_with_heavy"] = (
                G * (G - 1) * (G - 2) / 2.0 * p_light * p_light * self.p_heavy
            )
        return components

    def group_fail_y(self) -> float:
        """P[a SuDoku-Y group is left with unrepairable lines]."""
        return min(sum(self.group_fail_y_components().values()), 1.0)

    def cache_fail_y(self) -> float:
        """Per-interval DUE probability of the SuDoku-Y cache."""
        return complement_power(self.group_fail_y(), self.num_groups)

    def mttf_y_seconds(self) -> float:
        """MTTF of SuDoku-Y (paper: 3.49-3.9 hours; our rules give days)."""
        return mttf_seconds_from_interval_probability(
            self.cache_fail_y(), self.interval_s
        )

    def fit_y(self) -> float:
        """Total FIT of SuDoku-Y."""
        return fit_from_interval_probability(
            self.cache_fail_y(), self.interval_s
        ) + self.sdc_fit()

    # -- SuDoku-Z ----------------------------------------------------------------------

    def q_block_heavy(self) -> float:
        """P[a given heavy line is unrepairable within one of its groups].

        Under the peeling repair of SuDoku-Z, light (2-fault) partners
        that inflate the mismatch beyond the SDR cap are themselves
        peeled through *their* other group, so the only durable blocker
        is another heavy line in this group.  (The residual probability
        that a light partner is itself doubly blocked is third-order and
        neglected; the Monte-Carlo validation bounds the error.)
        """
        others = self.group_size - 1
        return min(complement_power(self.p_heavy, others), 1.0)

    def q_block_light(self) -> float:
        """P[a given light line is unrepairable within one of its groups].

        Needs a same-positions partner (full overlap), a containing heavy
        partner, or enough extra multi-bit lines to blow the mismatch cap.
        """
        others = self.group_size - 1
        extra_needed = self.sdr_max_mismatches // (self.ecc_t + 1)
        return min(
            others * self.p_light * self.q_full_overlap_22
            + others * self.p_exact(self.ecc_t + 2) * self.q_containment_23
            + binomial_tail(others, extra_needed, self.p_multi),
            1.0,
        )

    def group_fail_z_components(self) -> Dict[str, float]:
        """Per-mode Hash-1 group failure probabilities of SuDoku-Z."""
        G = self.group_size
        pairs = G * (G - 1) / 2.0
        p2 = self.p_light
        qh = self.q_block_heavy()
        ql = self.q_block_light()
        return {
            # Dominant: two heavy lines share a Hash-1 group and each is
            # *also* blocked in its (disjoint) Hash-2 group.
            "heavy_pair_double_blocked": pairs
            * self.p_heavy
            * self.p_heavy
            * qh
            * qh,
            # Fully-overlapping 2-fault pair, both blocked again under
            # Hash-2 (vanishingly rare; kept for completeness).
            "overlap_pair_double_blocked": pairs
            * p2
            * p2
            * self.q_full_overlap_22
            * ql
            * ql,
        }

    def group_fail_z(self) -> float:
        """P[a Hash-1 group still has 2+ unrepairable lines under SuDoku-Z]."""
        return min(sum(self.group_fail_z_components().values()), 1.0)

    def cache_fail_z(self) -> float:
        """Per-interval DUE probability of the SuDoku-Z cache."""
        return complement_power(self.group_fail_z(), self.num_groups)

    def fit_z_due(self) -> float:
        """DUE FIT of SuDoku-Z (paper: 1.05e-4)."""
        return fit_from_interval_probability(
            self.cache_fail_z(), self.interval_s
        )

    def fit_z(self) -> float:
        """Total FIT of SuDoku-Z: DUE plus the common SDC floor."""
        return self.fit_z_due() + self.sdc_fit()

    def mttf_z_hours(self) -> float:
        """MTTF of SuDoku-Z in hours."""
        p = self.cache_fail_z()
        if p == 0.0:
            return float("inf")
        return mttf_seconds_from_interval_probability(p, self.interval_s) / 3600.0

    # -- SuDoku-Z without SDR (footnote 4) ----------------------------------------------

    def fit_z_without_sdr(self) -> float:
        """FIT of skewed hashing alone, no SDR (paper footnote 4: ~4M)."""
        G = self.group_size
        pairs = G * (G - 1) / 2.0
        q_block = complement_power(self.p_multi, G - 1)
        group_fail = pairs * self.p_multi * self.p_multi * q_block * q_block
        cache_fail = complement_power(min(group_fail, 1.0), self.num_groups)
        return fit_from_interval_probability(cache_fail, self.interval_s)

    # -- SDC (Table III) -------------------------------------------------------------------

    def sdc_components(self) -> Dict[str, float]:
        """Event FIT rates feeding silent corruption (Table III rows)."""
        p7 = self.p_exact(7)
        p8 = self.p_at_least(8)
        fit_7 = fit_from_interval_probability(
            complement_power(p7, self.num_lines), self.interval_s
        )
        fit_8 = fit_from_interval_probability(
            complement_power(p8, self.num_lines), self.interval_s
        )
        return {"events_7_faults": fit_7, "events_8plus_faults": fit_8}

    def sdc_fit(self) -> float:
        """SDC FIT: each vulnerable event escapes CRC-31 with 2^-31."""
        components = self.sdc_components()
        return (
            components["events_7_faults"] + components["events_8plus_faults"]
        ) * self.crc_misdetect

    # -- aggregate views ----------------------------------------------------------------------

    def failure_probability_by(self, level: str, time_s: float) -> float:
        """P[cache has failed by ``time_s``] for a design level (Fig. 7)."""
        per_interval = {
            "X": self.cache_fail_x,
            "Y": self.cache_fail_y,
            "Z": self.cache_fail_z,
        }[level.upper()]()
        intervals = time_s / self.interval_s
        return complement_power(per_interval, int(max(intervals, 0)))

    def summary(self) -> Dict[str, float]:
        """Headline numbers, one call (used by benches and EXPERIMENTS.md)."""
        return {
            "ber": self.ber,
            "p_multi_line": self.p_multi,
            "expected_multi_lines_per_interval": self.expected_multi_lines(),
            "mttf_x_seconds": self.mttf_x_seconds(),
            "mttf_y_hours": self.mttf_y_seconds() / 3600.0,
            "mttf_z_hours": self.mttf_z_hours(),
            "fit_x": self.fit_x(),
            "fit_y": self.fit_y(),
            "fit_z": self.fit_z(),
            "fit_z_without_sdr": self.fit_z_without_sdr(),
            "sdc_fit": self.sdc_fit(),
        }


def _choose(n: int, k: int) -> float:
    """C(n, k) as a float (exact for the small k used here)."""
    result = 1.0
    for index in range(k):
        result = result * (n - index) / (index + 1)
    return result


def scale_with_cache_size(model: SuDokuReliabilityModel, factor: float) -> float:
    """FIT of SuDoku-Z when the cache is scaled by ``factor`` (Table IX).

    With all per-group statistics unchanged, FIT scales linearly in the
    number of groups; this helper makes that derivation explicit (and the
    full model at the scaled size is asserted against it in tests).
    """
    if factor <= 0:
        raise ValueError("factor must be positive")
    return model.fit_z_due() * factor + model.sdc_fit() * factor
