"""Monte-Carlo fault-injection campaigns over the functional engines.

The paper's FIT targets (1e-4 and below) are unobservable by direct
simulation -- that would need ~1e18 simulated intervals.  The reproduction
strategy, mirroring section VII-A, is:

1. run campaigns at *accelerated* BERs (1e-4 .. 1e-2) where failures are
   common enough to measure, using the real bit-level engines; and
2. verify that the analytical models of
   :mod:`repro.reliability.sudokumodel` predict the measured failure
   frequencies at those BERs, which licenses quoting the analytical
   model at the paper's operating point.

Each campaign interval is independent: faults are injected, the engine
scrubs, outcomes are recorded, and all surviving corruption is healed
before the next interval (the golden copies make this exact).
"""

from __future__ import annotations

import math
import time
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from repro.core.engine import SuDokuEngine, build_engine
from repro.obs import NULL_PROGRESS, Telemetry, resolve_telemetry
from repro.reliability.fit import (
    fit_from_interval_probability,
    mttf_seconds_from_interval_probability,
)
from repro.sttram.array import STTRAMArray
from repro.sttram.faults import TransientFaultInjector

#: Bucket edges for per-interval wall-clock times: small validation
#: campaigns clear an interval in microseconds, paper-geometry ones take
#: seconds.
INTERVAL_BUCKETS: Tuple[float, ...] = (
    1e-5, 1e-4, 1e-3, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 30.0, 120.0,
)


@dataclass
class CampaignResult:
    """Aggregate of a fault-injection campaign.

    ``interval_failures`` counts intervals with at least one DUE or SDC;
    the per-interval failure probability estimate and its Wilson interval
    follow from it.
    """

    intervals: int
    ber: float
    interval_s: float
    outcomes: Counter = field(default_factory=Counter)
    interval_failures: int = 0
    lines: int = 0

    @property
    def failure_probability(self) -> float:
        """Point estimate of per-interval cache failure probability."""
        if self.intervals == 0:
            return 0.0
        return self.interval_failures / self.intervals

    def wilson_interval(self, z: float = 1.96) -> Tuple[float, float]:
        """Wilson score interval for the failure probability."""
        n = self.intervals
        if n == 0:
            return (0.0, 1.0)
        p = self.failure_probability
        denominator = 1.0 + z * z / n
        centre = (p + z * z / (2 * n)) / denominator
        margin = (
            z * math.sqrt(p * (1 - p) / n + z * z / (4 * n * n)) / denominator
        )
        return (max(0.0, centre - margin), min(1.0, centre + margin))

    def fit(self) -> float:
        """Measured FIT rate (infinite when every interval failed)."""
        return fit_from_interval_probability(
            min(self.failure_probability, 1.0 - 1e-15), self.interval_s
        )

    def mttf_seconds(self) -> float:
        """Measured MTTF."""
        return mttf_seconds_from_interval_probability(
            max(self.failure_probability, 1e-300), self.interval_s
        )

    def outcome_rate(self, label: str) -> float:
        """Mean occurrences of an outcome label per interval."""
        if self.intervals == 0:
            return 0.0
        return self.outcomes.get(label, 0) / self.intervals


def heal(array: STTRAMArray) -> None:
    """Restore every corrupted line to its golden value (between trials)."""
    for frame in array.faulty_lines():
        array.restore(frame, array.golden(frame))


def run_engine_campaign(
    engine: SuDokuEngine,
    ber: float,
    intervals: int,
    interval_s: float = 0.020,
    rng: Optional[np.random.Generator] = None,
    randomize_content: bool = True,
    telemetry: Optional[Telemetry] = None,
    progress=NULL_PROGRESS,
) -> CampaignResult:
    """Inject-scrub-heal for ``intervals`` independent intervals.

    :param engine: a formatted SuDoku engine (or any object with the same
        array / scrub_frames / write_data interface, e.g. the baselines).
    :param ber: accelerated per-bit flip probability per interval.
    :param randomize_content: write random data once before the campaign
        (recommended; all-zero content makes overlap pathologies invisible
        to content-sensitive bugs the campaign exists to catch).
    :param telemetry: optional :class:`repro.obs.Telemetry`; when given it
        is also attached to the engine, so per-mechanism counters and
        repair spans are recorded alongside the campaign-level series.
        Telemetry never touches the RNG stream: results are bit-identical
        with it on or off.
    :param progress: a :class:`repro.obs.ProgressReporter` (default: the
        shared no-op) fed once per interval.
    """
    generator = rng if rng is not None else np.random.default_rng()
    tel = resolve_telemetry(telemetry)
    if telemetry is not None:
        attach = getattr(engine, "attach_telemetry", None)
        if attach is not None:
            attach(telemetry)
    metrics = tel.metrics
    m_interval = metrics.histogram(
        "campaign_interval_seconds",
        "Wall-clock time per campaign interval (inject + scrub + heal).",
        buckets=INTERVAL_BUCKETS,
    )
    m_intervals = metrics.counter(
        "campaign_intervals_total", "Campaign intervals completed."
    )
    m_failures = metrics.counter(
        "campaign_interval_failures_total",
        "Intervals with at least one DUE or SDC.",
    )
    m_outcomes = metrics.counter(
        "campaign_outcomes_total",
        "Line outcomes accumulated across campaign intervals.",
        labels=("outcome",),
    )
    m_faulty = metrics.histogram(
        "campaign_faulty_lines_per_interval",
        "Lines hit by at least one injected fault, per interval.",
        buckets=(0, 1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 10000),
    )

    array = engine.array
    if randomize_content:
        _fill_random_through_engine(engine, generator)
    injector = TransientFaultInjector(array.line_bits, ber, generator)
    result = CampaignResult(
        intervals=intervals, ber=ber, interval_s=interval_s, lines=array.num_lines
    )
    level = getattr(engine, "level", "?")
    with tel.tracer.span(
        "campaign", level=level, ber=ber, intervals=intervals,
        lines=array.num_lines,
    ):
        for _ in range(intervals):
            started = time.perf_counter() if tel.enabled else 0.0
            vectors = injector.error_vectors(array.num_lines)
            for frame, vector in vectors.items():
                array.inject(frame, vector)
            counts = engine.scrub_frames(sorted(vectors))
            result.outcomes.update(counts)
            failed = counts.get("due", 0) or counts.get("sdc", 0)
            if failed:
                result.interval_failures += 1
                heal(array)
                # A DUE may have triggered a parity rebuild over
                # still-corrupt words (write-path poisoning semantics);
                # healing invalidates those entries, so restore the
                # ground-truth parities too.
                initialize = getattr(engine, "initialize_parities", None)
                if initialize is not None:
                    initialize()
            if tel.enabled:
                m_intervals.inc()
                if failed:
                    m_failures.inc()
                m_faulty.observe(len(vectors))
                for label, count in counts.items():
                    m_outcomes.labels(outcome=label).inc(count)
                m_interval.observe(time.perf_counter() - started)
            progress.update()
    progress.finish()
    if telemetry is not None:
        stats = getattr(engine, "stats", None)
        if stats is not None:
            stats.publish_to(metrics, level=str(level))
    return result


def run_group_campaign(
    level: str,
    ber: float,
    trials: int,
    group_size: int = 64,
    interval_s: float = 0.020,
    rng: Optional[np.random.Generator] = None,
    telemetry: Optional[Telemetry] = None,
    progress=NULL_PROGRESS,
) -> CampaignResult:
    """Single-cache campaign sized for group-level statistics.

    Builds a compact engine (``group_size^2`` lines so SuDoku-Z's skewed
    hash is valid) and runs :func:`run_engine_campaign` -- the analytical
    model evaluated at the same geometry is the comparison target.
    """
    from repro.core.linecodec import LineCodec

    codec = LineCodec()
    num_lines = group_size * group_size
    array = STTRAMArray(num_lines, codec.stored_bits)
    engine = build_engine(level, array, group_size=group_size, codec=codec)
    return run_engine_campaign(
        engine, ber, trials, interval_s=interval_s, rng=rng,
        randomize_content=False, telemetry=telemetry, progress=progress,
    )


def _fill_random_through_engine(
    engine: SuDokuEngine, rng: np.random.Generator
) -> None:
    """Write random content via the engine so parities stay consistent."""
    import random as _random

    seed = int(rng.integers(0, 2 ** 63))
    local = _random.Random(seed)
    data_bits = engine.data_bits
    for frame in range(engine.array.num_lines):
        engine.write_data(frame, local.getrandbits(data_bits))


def agreement_ratio(measured: float, predicted: float) -> float:
    """measured/predicted, guarding zeros (used by validation tests)."""
    if predicted <= 0.0:
        return float("inf") if measured > 0 else 1.0
    return measured / predicted
