"""Monte-Carlo fault-injection campaigns over the functional engines.

The paper's FIT targets (1e-4 and below) are unobservable by direct
simulation -- that would need ~1e18 simulated intervals.  The reproduction
strategy, mirroring section VII-A, is:

1. run campaigns at *accelerated* BERs (1e-4 .. 1e-2) where failures are
   common enough to measure, using the real bit-level engines; and
2. verify that the analytical models of
   :mod:`repro.reliability.sudokumodel` predict the measured failure
   frequencies at those BERs, which licenses quoting the analytical
   model at the paper's operating point.

Each campaign interval is independent: faults are injected, the engine
scrubs, outcomes are recorded, and all surviving corruption is healed
before the next interval (the golden copies make this exact).  That
interval-boundary invariant is also what makes campaigns *resumable*:
a checkpoint captured between intervals (RNG states + aggregates; see
:mod:`repro.resilience.checkpoint`) plus a deterministic re-fill fully
determines the rest of the run, so a killed-and-resumed campaign is
bit-identical to an uninterrupted one.

Chaos campaigns (:mod:`repro.resilience.chaos`) additionally corrupt
the correction metadata each interval and perturb the scrub schedule;
the boundary invariant is preserved by healing the array and running the
engine's metadata scrub (``audit_metadata``) at every interval end.
"""

from __future__ import annotations

import math
import time
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from repro.core.engine import SuDokuEngine, build_engine
from repro.core.outcomes import Outcome, is_failure_label
from repro.core.rng import SeedLike, resolve_rng
from repro.obs import NULL_PROGRESS, Telemetry, resolve_telemetry
from repro.reliability.fit import (
    fit_from_interval_probability,
    mttf_seconds_from_interval_probability,
)
from repro.resilience.checkpoint import (
    Checkpointer,
    CheckpointError,
    Deadline,
    build_payload,
    numpy_rng_state,
    require_config_match,
    restore_numpy_rng_state,
)
from repro.resilience.chaos import ChaosInjector
from repro.sttram.array import STTRAMArray
from repro.sttram.faults import TransientFaultInjector

#: Bucket edges for per-interval wall-clock times: small validation
#: campaigns clear an interval in microseconds, paper-geometry ones take
#: seconds.
INTERVAL_BUCKETS: Tuple[float, ...] = (
    1e-5, 1e-4, 1e-3, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 30.0, 120.0,
)


@dataclass
class CampaignResult:
    """Aggregate of a fault-injection campaign.

    ``interval_failures`` counts intervals with at least one DUE (data-
    or metadata-caused) or SDC; the per-interval failure probability
    estimate and its Wilson interval follow from it.

    ``truncated`` marks a campaign that ended early (``stop_reason`` is
    ``"interrupted"`` or ``"deadline"``); ``intervals`` then reflects the
    intervals actually *completed*, so every derived estimate remains
    valid for the partial run.  ``metadata`` counts chaos events applied
    and residual metadata faults detected/rebuilt by the interval-end
    metadata scrub (empty for non-chaos campaigns).
    """

    intervals: int
    ber: float
    interval_s: float
    outcomes: Counter = field(default_factory=Counter)
    interval_failures: int = 0
    lines: int = 0
    truncated: bool = False
    stop_reason: str = ""
    metadata: Counter = field(default_factory=Counter)

    @property
    def failure_probability(self) -> float:
        """Point estimate of per-interval cache failure probability."""
        if self.intervals == 0:
            return 0.0
        return self.interval_failures / self.intervals

    def wilson_interval(self, z: float = 1.96) -> Tuple[float, float]:
        """Wilson score interval for the failure probability."""
        n = self.intervals
        if n == 0:
            return (0.0, 1.0)
        p = self.failure_probability
        denominator = 1.0 + z * z / n
        centre = (p + z * z / (2 * n)) / denominator
        margin = (
            z * math.sqrt(p * (1 - p) / n + z * z / (4 * n * n)) / denominator
        )
        return (max(0.0, centre - margin), min(1.0, centre + margin))

    def fit(self) -> float:
        """Measured FIT rate (infinite when every interval failed)."""
        return fit_from_interval_probability(
            min(self.failure_probability, 1.0 - 1e-15), self.interval_s
        )

    def mttf_seconds(self) -> float:
        """Measured MTTF."""
        return mttf_seconds_from_interval_probability(
            max(self.failure_probability, 1e-300), self.interval_s
        )

    def outcome_rate(self, label: str) -> float:
        """Mean occurrences of an outcome label per interval."""
        if self.intervals == 0:
            return 0.0
        return self.outcomes.get(label, 0) / self.intervals

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready snapshot (``--result-out``, CI round-trip checks)."""
        return {
            "intervals": self.intervals,
            "ber": self.ber,
            "interval_s": self.interval_s,
            "outcomes": dict(self.outcomes),
            "interval_failures": self.interval_failures,
            "lines": self.lines,
            "truncated": self.truncated,
            "stop_reason": self.stop_reason,
            "metadata": dict(self.metadata),
            "failure_probability": self.failure_probability,
        }


def heal(array: STTRAMArray) -> None:
    """Restore every corrupted line to its golden value (between trials).

    O(dirty) via the array's dirty-frame set, not O(lines).
    """
    for frame in array.faulty_lines():
        array.restore(frame, array.golden(frame))


#: Valid values for the campaign ``scrub_mode`` knob.
SCRUB_MODES = ("sparse", "dense")


def _require_scrub_mode(scrub_mode: str) -> None:
    if scrub_mode not in SCRUB_MODES:
        raise ValueError(
            f"scrub_mode must be one of {SCRUB_MODES}, got {scrub_mode!r}"
        )


def _dense_walk(num_lines: int, dirty, visits) -> list:
    """Full-pass visit order for dense-mode scrubs.

    Every line is visited in index order; the faulty frames follow their
    (possibly chaos-perturbed) schedule -- a dropped visit is omitted, a
    duplicated one repeated -- so the sequence of non-trivial decodes is
    identical to what the sparse path replays.
    """
    multiplicity = Counter(visits)
    dirty_set = set(dirty)
    walk = []
    # A dense pass is defined as visiting every line in index order;
    # O(lines) is the semantics here, not an accident (sparse mode is
    # the fast path that skips this entirely).
    # repro-lint: disable=RPR009
    for frame in range(num_lines):
        if frame in dirty_set:
            walk.extend([frame] * multiplicity.get(frame, 0))
        else:
            walk.append(frame)
    return walk


def run_engine_campaign(
    engine: SuDokuEngine,
    ber: float,
    intervals: int,
    interval_s: float = 0.020,
    rng: Optional[np.random.Generator] = None,
    randomize_content: bool = True,
    telemetry: Optional[Telemetry] = None,
    progress=NULL_PROGRESS,
    chaos: Optional[ChaosInjector] = None,
    checkpointer: Optional[Checkpointer] = None,
    deadline: Optional[Deadline] = None,
    scrub_mode: str = "sparse",
    seed: Optional[SeedLike] = None,
    backend: Optional[str] = None,
) -> CampaignResult:
    """Inject-scrub-heal for ``intervals`` independent intervals.

    :param engine: a formatted SuDoku engine (or any object with the same
        array / scrub_frames / write_data interface, e.g. the baselines).
    :param ber: accelerated per-bit flip probability per interval.
    :param backend: optional kernel backend name (``"reference"`` or
        ``"numpy"``); when given, the engine and the fault injector route
        their bulk operations through it.  Backends are bit-identical by
        contract, so checkpoints deliberately omit the choice -- a
        reference run may be resumed on numpy and vice versa.
    :param scrub_mode: ``"sparse"`` (default) scrubs only the frames the
        array's dirty index reports and bulk-accounts the rest as
        ``clean``; ``"dense"`` decodes every line of the array each
        interval.  The two modes draw the identical RNG sequence and
        produce bit-identical outcome counters per seed (the golden
        equivalence tests pin this, including under chaos), so
        checkpoints deliberately omit the mode -- a dense run may be
        resumed sparse and vice versa.  ``"dense"`` exists as the
        trust-nothing audit mode; see docs/performance.md.
    :param randomize_content: write random data once before the campaign
        (recommended; all-zero content makes overlap pathologies invisible
        to content-sensitive bugs the campaign exists to catch).
    :param telemetry: optional :class:`repro.obs.Telemetry`; when given it
        is also attached to the engine, so per-mechanism counters and
        repair spans are recorded alongside the campaign-level series.
        Telemetry never touches the RNG stream: results are bit-identical
        with it on or off.
    :param progress: a :class:`repro.obs.ProgressReporter` (default: the
        shared no-op) fed once per interval.
    :param chaos: optional :class:`repro.resilience.chaos.ChaosInjector`;
        each interval it corrupts the engine's parity metadata and
        perturbs the scrub visit list.  It draws from its *own* RNG, so
        ``chaos=None`` and an all-zero policy are bit-identical.
    :param checkpointer: optional
        :class:`repro.resilience.checkpoint.Checkpointer`; snapshots are
        taken at interval boundaries and flushed on schedule, interrupt,
        deadline expiry, and completion.  When its ``resume`` payload is
        set, the campaign validates it against the current parameters and
        continues where the snapshot left off (pass a *freshly built*
        engine -- content is re-derived deterministically).
    :param deadline: optional wall-clock
        :class:`repro.resilience.checkpoint.Deadline`; on expiry the
        campaign ends cleanly with partial results
        (``truncated=True, stop_reason="deadline"``).

    ``KeyboardInterrupt`` mid-campaign is caught at the interval
    boundary: the partial result is returned (``truncated=True,
    stop_reason="interrupted"``) with the last boundary snapshot flushed,
    instead of discarding completed intervals.
    """
    _require_scrub_mode(scrub_mode)
    if backend is not None:
        setter = getattr(engine, "set_backend", None)
        if setter is not None:
            setter(backend)
    generator = resolve_rng(rng, seed, owner="run_engine_campaign")
    tel = resolve_telemetry(telemetry)
    if telemetry is not None:
        attach = getattr(engine, "attach_telemetry", None)
        if attach is not None:
            attach(telemetry)
    metrics = tel.metrics
    m_interval = metrics.histogram(
        "campaign_interval_seconds",
        "Wall-clock time per campaign interval (inject + scrub + heal).",
        buckets=INTERVAL_BUCKETS,
    )
    m_intervals = metrics.counter(
        "campaign_intervals_total", "Campaign intervals completed."
    )
    m_failures = metrics.counter(
        "campaign_interval_failures_total",
        "Intervals with at least one DUE or SDC.",
    )
    m_outcomes = metrics.counter(
        "campaign_outcomes_total",
        "Line outcomes accumulated across campaign intervals.",
        labels=("outcome",),
    )
    m_faulty = metrics.histogram(
        "campaign_faulty_lines_per_interval",
        "Lines hit by at least one injected fault, per interval.",
        buckets=(0, 1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 10000),
    )
    m_chaos = metrics.counter(
        "chaos_events_total",
        "Metadata chaos events applied to the engine.",
        labels=("event",),
    )
    m_checkpoints = metrics.counter(
        "campaign_checkpoint_writes_total", "Campaign checkpoints flushed."
    )

    array = engine.array
    level = getattr(engine, "level", "?")
    config_fingerprint: Dict[str, object] = {
        "kind": "montecarlo",
        "level": str(level),
        "ber": ber,
        "intervals": intervals,
        "interval_s": interval_s,
        "lines": array.num_lines,
        "line_bits": array.line_bits,
        "group_size": getattr(engine, "group_size", None),
        "randomize_content": bool(randomize_content),
        "chaos": chaos.policy.as_dict() if chaos is not None else None,
    }
    resume = checkpointer.resume if checkpointer is not None else None
    start = 0
    result = CampaignResult(
        intervals=intervals, ber=ber, interval_s=interval_s, lines=array.num_lines
    )
    fill_seed: Optional[int] = None
    if resume is not None:
        require_config_match(resume, config_fingerprint)
        start = int(resume["completed"])
        aggregates = resume["aggregates"]
        result.outcomes.update(aggregates.get("outcomes", {}))
        result.interval_failures = int(aggregates.get("interval_failures", 0))
        result.metadata.update(aggregates.get("metadata", {}))
        raw_fill_seed = aggregates.get("fill_seed")
        fill_seed = int(raw_fill_seed) if raw_fill_seed is not None else None
        if randomize_content and fill_seed is None:
            raise CheckpointError(
                "checkpoint is missing the content fill seed; cannot "
                "re-derive the campaign's array content"
            )
    elif randomize_content:
        fill_seed = int(generator.integers(0, 2 ** 63))
    if randomize_content:
        _fill_random_through_engine(engine, fill_seed)
    if resume is not None:
        # RNG states are captured at interval boundaries, so restoring
        # them *after* the deterministic re-fill replays the exact
        # random sequence the uninterrupted run would have seen.
        restore_numpy_rng_state(generator, resume["rng"]["numpy"])
        if chaos is not None and "chaos" in resume["rng"]:
            chaos.restore_rng_state(resume["rng"]["chaos"])
    injector = TransientFaultInjector(
        array.line_bits, ber, generator,
        backend=getattr(engine, "backend", None),
    )

    def boundary_snapshot(completed: int) -> Dict[str, object]:
        aggregates = {
            "outcomes": dict(result.outcomes),
            "interval_failures": result.interval_failures,
            "metadata": dict(result.metadata),
            "fill_seed": fill_seed,
        }
        rng_block: Dict[str, object] = {"numpy": numpy_rng_state(generator)}
        if chaos is not None:
            rng_block["chaos"] = chaos.rng_state()
        return build_payload(
            "montecarlo", config_fingerprint, completed, aggregates, rng_block
        )

    def flush_checkpoint(snapshot: Dict[str, object]) -> None:
        with tel.tracer.span("checkpoint_write", path=checkpointer.path):
            checkpointer.save(snapshot)
        if tel.enabled:
            m_checkpoints.inc()

    completed = start
    snapshot = boundary_snapshot(start)
    # Per-phase spans are attribute-free: a live tracer pays two clock
    # reads per span, the NullTracer pays one no-op call, and either way
    # the RNG stream is untouched.
    tracer = tel.tracer
    with tracer.span(
        "campaign", level=level, ber=ber, intervals=intervals,
        lines=array.num_lines,
    ):
        try:
            for _ in range(start, intervals):
                started = time.perf_counter() if tel.enabled else 0.0
                with tracer.span("phase_inject"):
                    if chaos is not None:
                        applied = chaos.corrupt_metadata(engine)
                        result.metadata.update(applied)
                        if tel.enabled:
                            for event, count in applied.items():
                                m_chaos.labels(event=event).inc(count)
                    dirty = injector.inject_frames(array)
                    if array.has_permanent_faults:
                        # Stuck-conflicting lines are permanently dirty
                        # even when no transient landed on them this
                        # interval; the sparse pass must keep visiting
                        # them to stay bit-identical to dense.
                        dirty = array.dirty_frames()
                    visits = dirty
                    if chaos is not None:
                        visits, applied = chaos.perturb_visits(visits)
                        result.metadata.update(applied)
                        if tel.enabled:
                            for event, count in applied.items():
                                m_chaos.labels(event=event).inc(count)
                with tracer.span("phase_scrub"):
                    if scrub_mode == "dense":
                        counts = engine.scrub_frames(
                            _dense_walk(array.num_lines, dirty, visits)
                        )
                    else:
                        # Sparse fast path: decode the scheduled dirty
                        # visits only; every frame outside the
                        # (pre-perturbation) dirty set is a valid codeword
                        # and bulk-accounts as clean -- exactly the
                        # outcomes a dense walk records for those lines.
                        sparse_counts = Counter(engine.scrub_frames(visits))
                        bulk_clean = array.num_lines - len(dirty)
                        account = getattr(engine, "account_bulk_clean", None)
                        if account is not None:
                            account(bulk_clean)
                        sparse_counts[Outcome.CLEAN.value] += bulk_clean
                        counts = dict(sparse_counts)
                result.outcomes.update(counts)
                failed = any(
                    count and is_failure_label(label)
                    for label, count in counts.items()
                )
                with tracer.span("phase_correct"):
                    if failed:
                        result.interval_failures += 1
                        heal(array)
                        # A DUE may have triggered a parity rebuild over
                        # still-corrupt words (write-path poisoning
                        # semantics); healing invalidates those entries, so
                        # restore the ground-truth parities too.
                        initialize = getattr(
                            engine, "initialize_parities", None
                        )
                        if initialize is not None:
                            initialize()
                    if chaos is not None:
                        # Dropped visits and undetected metadata corruption
                        # must not leak across the interval boundary (the
                        # independence invariant campaigns and checkpoints
                        # both rely on): heal the array and run the
                        # engine's metadata scrub.
                        heal(array)
                        audit = getattr(engine, "audit_metadata", None)
                        if audit is not None:
                            audit_report = audit(repair=True)
                            for key in (
                                "crc_faults", "recompute_faults", "rebuilt",
                            ):
                                if audit_report.get(key):
                                    result.metadata["residual_" + key] += (
                                        audit_report[key]
                                    )
                completed += 1
                if tel.enabled:
                    m_intervals.inc()
                    if failed:
                        m_failures.inc()
                    m_faulty.observe(len(dirty))
                    for label, count in counts.items():
                        m_outcomes.labels(outcome=label).inc(count)
                    m_interval.observe(time.perf_counter() - started)
                snapshot = boundary_snapshot(completed)
                if checkpointer is not None and checkpointer.due(completed):
                    flush_checkpoint(snapshot)
                if deadline is not None and deadline.expired():
                    result.truncated = True
                    result.stop_reason = deadline.reason
                    break
                progress.update()
        except KeyboardInterrupt:
            # Completed intervals are not discarded: roll back to the
            # last interval boundary and return the partial aggregates.
            result.truncated = True
            result.stop_reason = "interrupted"
            completed = int(snapshot["completed"])
            aggregates = snapshot["aggregates"]
            result.outcomes = Counter(aggregates["outcomes"])
            result.interval_failures = int(aggregates["interval_failures"])
            result.metadata = Counter(aggregates["metadata"])
    if checkpointer is not None:
        flush_checkpoint(snapshot)
    result.intervals = completed
    progress.finish()
    if telemetry is not None:
        stats = getattr(engine, "stats", None)
        if stats is not None:
            stats.publish_to(metrics, level=str(level))
    return result


def run_group_campaign(
    level: str,
    ber: float,
    trials: int,
    group_size: int = 64,
    interval_s: float = 0.020,
    rng: Optional[np.random.Generator] = None,
    telemetry: Optional[Telemetry] = None,
    progress=NULL_PROGRESS,
    chaos: Optional[ChaosInjector] = None,
    checkpointer: Optional[Checkpointer] = None,
    deadline: Optional[Deadline] = None,
    scrub_mode: str = "sparse",
    seed: Optional[SeedLike] = None,
    backend: Optional[str] = None,
) -> CampaignResult:
    """Single-cache campaign sized for group-level statistics.

    Builds a compact engine (``group_size^2`` lines so SuDoku-Z's skewed
    hash is valid) and runs :func:`run_engine_campaign` -- the analytical
    model evaluated at the same geometry is the comparison target.  The
    resilience knobs (``chaos``, ``checkpointer``, ``deadline``),
    ``scrub_mode``, and ``backend`` pass straight through.
    """
    from repro.core.linecodec import LineCodec

    codec = LineCodec()
    num_lines = group_size * group_size
    array = STTRAMArray(num_lines, codec.stored_bits)
    engine = build_engine(
        level, array, group_size=group_size, codec=codec, backend=backend
    )
    return run_engine_campaign(
        engine, ber, trials, interval_s=interval_s, rng=rng,
        randomize_content=False, telemetry=telemetry, progress=progress,
        chaos=chaos, checkpointer=checkpointer, deadline=deadline,
        scrub_mode=scrub_mode, seed=seed,
    )


def _fill_random_through_engine(engine: SuDokuEngine, seed: int) -> None:
    """Write random content via the engine so parities stay consistent.

    The content stream is a ``random.Random(seed)`` so a resumed
    campaign can re-derive the identical array from the checkpointed
    seed without consuming the campaign generator.
    """
    import random as _random

    local = _random.Random(seed)
    data_bits = engine.data_bits
    # Each write must go through engine.write_data so the parity tables
    # track the content; there is no bulk engine write to route to.
    # repro-lint: disable=RPR009
    for frame in range(engine.array.num_lines):
        engine.write_data(frame, local.getrandbits(data_bits))


def agreement_ratio(measured: float, predicted: float) -> float:
    """measured/predicted, guarding zeros (used by validation tests)."""
    if predicted <= 0.0:
        return float("inf") if measured > 0 else 1.0
    return measured / predicted
