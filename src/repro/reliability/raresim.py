"""Conditional (rare-event) Monte-Carlo for group-level failures.

Whole-cache campaigns waste almost every interval at realistic error
rates: a group only *matters* when it holds two or more multi-bit-faulty
lines, which at BER 5.3e-6 happens once per ~400 intervals per cache.
This module samples *directly from the conditional distribution*:

1. condition a RAID-Group on having ``m >= 2`` multi-bit lines
   (``m`` drawn from the conditioned binomial);
2. give each such line a fault count drawn from the conditioned
   per-line tail and uniform fault positions;
3. run the *real* correction machinery (scan -> SDR -> RAID-4, and for
   SuDoku-Z the Hash-2 side-groups with peeling) on a bit-level group;
4. multiply the measured conditional failure probability by the
   analytic probability of the conditioning event.

The unconditional estimate
``P(group DUE) = P(m >= 2) * P(DUE | m >= 2)``
is exact, and the variance reduction vs naive campaigns is the inverse
of the conditioning probability -- three orders of magnitude at
BER 1e-4 for the paper geometry.

Single-fault background lines are provably irrelevant (the group scan
repairs them before any parity computation), so they are not sampled.
Hash-2 side-groups sample their own multi-line background at the
unconditioned rate; blockers beyond the first peeling level carry
probability O(p_multi^2) relative and are neglected (documented in
EXPERIMENTS.md).
"""

from __future__ import annotations

import math
import random
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - cycle: scenario imports repro.parallel
    from repro.reliability.scenario import FaultScenario

from repro.coding.bitvec import random_error_vector
from repro.core.linecodec import LineCodec
from repro.core.plt_ import ParityLineTable
from repro.core.raid4 import reconstruct_line, scan_group
from repro.core.rng import resolve_pyrandom
from repro.kernels import resolve_backend
from repro.core.sdr import resurrect
from repro.obs import NULL_PROGRESS, NullTracer, Telemetry, resolve_telemetry
from repro.reliability.binomial import binomial_pmf, binomial_tail, complement_power
from repro.reliability.fit import fit_from_interval_probability
from repro.resilience.checkpoint import (
    Checkpointer,
    Deadline,
    build_payload,
    python_rng_state,
    require_config_match,
    restore_python_rng_state,
)
from repro.sttram.array import STTRAMArray

#: Bucket edges for conditioned-trial wall times: a Y trial is one group
#: scan (sub-millisecond at bench geometries); Z trials fan out into
#: side-groups and can take tens of milliseconds.
TRIAL_BUCKETS: Tuple[float, ...] = (
    1e-5, 1e-4, 5e-4, 1e-3, 5e-3, 0.01, 0.05, 0.1, 0.5, 1.0,
)

#: Truncation of the conditioned fault-count distribution; the mass
#: beyond this is ~(n*ber)^k / k! and utterly negligible for every BER
#: this estimator is used at.
MAX_FAULTS_PER_LINE = 16

#: Truncation of the conditioned multi-line-count distribution.
MAX_MULTI_LINES = 12


def _conditional_distribution(probabilities: List[float]) -> List[float]:
    total = sum(probabilities)
    if total <= 0:
        raise ValueError("conditioning event has zero probability")
    return [p / total for p in probabilities]


def _draw(rng: random.Random, support: List[int], weights: List[float]) -> int:
    point = rng.random()
    cumulative = 0.0
    for value, weight in zip(support, weights):
        cumulative += weight
        if point <= cumulative:
            return value
    return support[-1]


@dataclass
class ConditionalResult:
    """Outcome of a conditional campaign.

    ``truncated`` marks a campaign ended early by interrupt or deadline
    (``stop_reason``); ``trials`` then reflects the trials actually
    completed, keeping every derived estimate valid for the partial run.
    """

    trials: int
    conditional_failures: int
    conditioning_probability: float
    ber: float
    group_size: int
    num_groups: int
    interval_s: float
    truncated: bool = False
    stop_reason: str = ""

    def as_dict(self) -> dict:
        """JSON-ready snapshot (``--result-out``, CI round-trip checks).

        Every derived statistic the CLI prints is present -- including
        the Wilson CI bounds and the per-interval cache failure
        probability, which earlier result files silently dropped -- so
        a stored result (the serve store, ``--result-out``) carries the
        full printed report, and every derived field is recomputed from
        the tallies, never cached.
        """
        ci_low, ci_high = self.conditional_ci()
        return {
            "trials": self.trials,
            "conditional_failures": self.conditional_failures,
            "conditioning_probability": self.conditioning_probability,
            "ber": self.ber,
            "group_size": self.group_size,
            "num_groups": self.num_groups,
            "interval_s": self.interval_s,
            "truncated": self.truncated,
            "stop_reason": self.stop_reason,
            "conditional_failure_probability": (
                self.conditional_failure_probability
            ),
            "conditional_ci_low": ci_low,
            "conditional_ci_high": ci_high,
            "cache_failure_probability": self.cache_failure_probability(),
            "fit": self.fit(),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ConditionalResult":
        """Rebuild a result from :meth:`as_dict` output.

        Only the tally/config fields are consumed; derived statistics
        (CI bounds, FIT, failure probabilities) are recomputed from the
        tallies, so a round-trip can never resurrect a stale cached
        value.
        """
        return cls(
            trials=int(payload["trials"]),
            conditional_failures=int(payload["conditional_failures"]),
            conditioning_probability=float(
                payload["conditioning_probability"]
            ),
            ber=float(payload["ber"]),
            group_size=int(payload["group_size"]),
            num_groups=int(payload["num_groups"]),
            interval_s=float(payload["interval_s"]),
            truncated=bool(payload.get("truncated", False)),
            stop_reason=str(payload.get("stop_reason", "")),
        )

    @property
    def conditional_failure_probability(self) -> float:
        """P[group DUE | group has >= 2 multi-bit lines]."""
        if self.trials == 0:
            return 0.0
        return self.conditional_failures / self.trials

    @property
    def group_failure_probability(self) -> float:
        """Unconditional per-group, per-interval DUE probability."""
        return self.conditioning_probability * self.conditional_failure_probability

    def cache_failure_probability(self) -> float:
        """Per-interval cache failure probability."""
        return complement_power(self.group_failure_probability, self.num_groups)

    def fit(self) -> float:
        """Estimated cache FIT."""
        return fit_from_interval_probability(
            self.cache_failure_probability(), self.interval_s
        )

    def conditional_ci(self, z: float = 1.96) -> Tuple[float, float]:
        """Wilson interval on the conditional failure probability.

        The degenerate tallies pin their exact bound: zero failures has
        a lower bound of exactly 0.0 and all-failures an upper bound of
        exactly 1.0 (the float formula can land an ulp off either way).
        """
        n = self.trials
        if n == 0:
            return (0.0, 1.0)
        p = self.conditional_failure_probability
        denominator = 1.0 + z * z / n
        centre = (p + z * z / (2 * n)) / denominator
        margin = z * math.sqrt(p * (1 - p) / n + z * z / (4 * n * n)) / denominator
        low = max(0.0, centre - margin)
        high = min(1.0, centre + margin)
        if self.conditional_failures == 0:
            low = 0.0
        if self.conditional_failures == n:
            high = 1.0
        return (low, high)


class ConditionalGroupSimulator:
    """Samples conditioned fault patterns and runs the real machinery."""

    def __init__(
        self,
        ber: float,
        group_size: int = 512,
        num_groups: int = 2048,
        interval_s: float = 0.020,
        codec: Optional[LineCodec] = None,
        sdr_max_mismatches: int = 6,
        rng: Optional[random.Random] = None,
        sparse: bool = True,
        seed: Optional[int] = None,
        scenario: Optional["FaultScenario"] = None,
        backend: Optional[str] = None,
    ) -> None:
        if not 0.0 < ber < 1.0:
            raise ValueError("ber must be in (0, 1)")
        self.ber = ber
        self.group_size = group_size
        self.num_groups = num_groups
        self.interval_s = interval_s
        self.codec = codec if codec is not None else LineCodec()
        self.sdr_max_mismatches = sdr_max_mismatches
        #: Optional mixed-fault overlay: each trial group is built with a
        #: freshly sampled stuck-at map (the spec's ppm density) and the
        #: conditioned transient pattern is augmented with one interval's
        #: burst events.  All extra draws come from the simulator's one
        #: python stream, so checkpoints stay a single RNG state.  The
        #: ``transient_ber`` field is *not* consumed here -- the
        #: conditioned ``ber`` is this estimator's transient model (the
        #: CLI maps ``scenario.transient_ber`` onto it).  Hash-2
        #: side-groups sample their own stuck map but no bursts: a burst
        #: blocking a side-group retry is a second-order term, neglected
        #: like the deeper peeling levels (see EXPERIMENTS.md).
        self.scenario = scenario
        self._rng = resolve_pyrandom(
            rng, seed, owner="ConditionalGroupSimulator"
        )
        #: With ``sparse`` (the default) group scans consult the array's
        #: dirty-frame index and skip decoding known-clean lines -- the
        #: scan result is provably identical (see
        #: :func:`repro.core.raid4.scan_group`), so trial outcomes and
        #: checkpoints are bit-identical in both modes; ``sparse=False``
        #: is the trust-nothing audit mode.
        self.sparse = sparse
        #: Kernel backend for bulk operations (parity folds, batched
        #: group decodes).  Bit-identical by contract and fed no RNG, so
        #: it is deliberately absent from the checkpoint fingerprint.
        self.backend = resolve_backend(backend)
        self.line_bits = self.codec.stored_bits
        #: Phase-span tracer; :meth:`run` swaps in the campaign's live
        #: tracer (RNG-neutral: spans never touch the trial stream).
        self._tracer = NullTracer()

        # Per-line multi-fault probability and the conditioned tails.
        self.p_multi = binomial_tail(self.line_bits, 2, ber)
        fault_pmf = [
            binomial_pmf(self.line_bits, k, ber)
            for k in range(2, MAX_FAULTS_PER_LINE + 1)
        ]
        self._fault_support = list(range(2, MAX_FAULTS_PER_LINE + 1))
        self._fault_weights = _conditional_distribution(fault_pmf)

        multi_pmf = [
            binomial_pmf(group_size, m, self.p_multi)
            for m in range(2, MAX_MULTI_LINES + 1)
        ]
        self._multi_support = list(range(2, MAX_MULTI_LINES + 1))
        self._multi_weights = _conditional_distribution(multi_pmf)
        #: P[the conditioning event]: >= 2 multi-bit lines in the group.
        self.conditioning_probability = binomial_tail(group_size, 2, self.p_multi)

    # -- group construction ----------------------------------------------------------

    def _fresh_group(self) -> Tuple[STTRAMArray, ParityLineTable]:
        """A formatted G-line array with content, parity, and no faults.

        With a scenario overlay the group gets its stuck-at map attached
        *before* content is written, so the fill stores through the
        stuck bits (golden keeps the intent) -- the same setup order as
        scenario campaigns.  The parity is rebuilt over the golden
        words, so stuck bits appear to the repair machinery as what they
        physically are: pre-existing storage faults.
        """
        array = STTRAMArray(self.group_size, self.line_bits)
        if self.scenario is not None:
            stuck_map = self.scenario.sample_stuck_map_py(
                self._rng, self.group_size, self.line_bits
            )
            if stuck_map is not None:
                array.attach_permanent_faults(stuck_map)
        plt = ParityLineTable(1, self.line_bits, backend=self.backend)
        words = []
        for frame in range(self.group_size):
            word = self.codec.encode(self._rng.getrandbits(self.codec.layout.data_bits))
            array.write(frame, word)
            words.append(word)
        plt.rebuild(0, words)
        return array, plt

    def _inject_conditioned(self, array: STTRAMArray) -> List[int]:
        """Inject the conditioned multi-fault pattern; returns hit frames."""
        count = _draw(self._rng, self._multi_support, self._multi_weights)
        frames = self._rng.sample(range(self.group_size), count)
        for frame in frames:
            faults = _draw(self._rng, self._fault_support, self._fault_weights)
            array.inject(
                frame, random_error_vector(self.line_bits, faults, self._rng)
            )
        self._inject_scenario_bursts(array)
        return frames

    def _inject_scenario_bursts(self, array: STTRAMArray) -> None:
        """Overlay one interval's burst events onto the trial group."""
        if self.scenario is None:
            return
        vectors = self.scenario.sample_burst_vectors_py(
            self._rng, self.group_size, self.line_bits
        )
        for frame in sorted(vectors):
            array.inject(frame, vectors[frame])

    def _inject_background(self, array: STTRAMArray, exclude: int) -> None:
        """Unconditioned multi-fault background for a Hash-2 side-group."""
        for frame in range(self.group_size):
            if frame == exclude:
                continue
            if self._rng.random() < self.p_multi:
                faults = _draw(self._rng, self._fault_support, self._fault_weights)
                array.inject(
                    frame, random_error_vector(self.line_bits, faults, self._rng)
                )

    # -- repair drivers ---------------------------------------------------------------

    def _batched_decoder(self, array: STTRAMArray):
        """A scan decoder backed by one batched decode of the group.

        Prefetches exactly the frames the scan will decode (all of them,
        or only the dirty ones under ``sparse``) and serves each from
        the memo while the stored word is unchanged; anything rewritten
        mid-scan falls through to the scalar decode.  ``None`` for
        non-batched backends -- the scan then uses ``codec.decode``
        directly, as before.
        """
        if not self.backend.batched:
            return None
        frames = [
            frame
            for frame in range(self.group_size)
            if not self.sparse or array.is_dirty(frame)
        ]
        words = [array.read(frame) for frame in frames]
        decodes = self.backend.batch_decode(self.codec, words)
        memo = {
            frame: (stored, decode)
            for frame, stored, decode in zip(frames, words, decodes)
        }

        def decoder(frame: int, stored: int):
            entry = memo.get(frame)
            if entry is not None and entry[0] == stored:
                return entry[1]
            return self.codec.decode(stored)

        return decoder

    def _repair_y(self, array: STTRAMArray, plt: ParityLineTable) -> List[int]:
        """Full SuDoku-Y repair of one group; returns surviving frames."""
        with self._tracer.span("phase_scrub"):
            scan = scan_group(
                array, self.codec, 0, range(self.group_size),
                trusted_clean=self.sparse,
                decoder=self._batched_decoder(array),
            )
        with self._tracer.span("phase_correct"):
            if len(scan.uncorrectable) > 1:
                resurrect(
                    array, self.codec, plt, scan, self.sdr_max_mismatches
                )
            if len(scan.uncorrectable) == 1:
                reconstruct_line(
                    array, self.codec, plt, scan, scan.uncorrectable[0]
                )
        return list(scan.uncorrectable)

    def trial_y(self) -> bool:
        """One conditioned trial of SuDoku-Y; True = the group failed."""
        with self._tracer.span("phase_inject"):
            array, plt = self._fresh_group()
            self._inject_conditioned(array)
        return bool(self._repair_y(array, plt))

    def trial_z(self) -> bool:
        """One conditioned trial of SuDoku-Z (one peeling level of Hash-2)."""
        with self._tracer.span("phase_inject"):
            array, plt = self._fresh_group()
            self._inject_conditioned(array)
        survivors = self._repair_y(array, plt)
        if not survivors:
            return False
        # Each survivor retries in its Hash-2 group: fresh partner lines
        # (guaranteed disjoint by the skewing invariant) with an
        # unconditioned multi-fault background.
        for survivor in survivors:
            with self._tracer.span("phase_inject"):
                side_array, side_plt = self._fresh_group()
                golden = array.golden(survivor)
                side_array.write(0, golden)  # the survivor aliases slot 0
                side_plt.rebuild(
                    0, [side_array.read(f) for f in range(self.group_size)]
                )
                side_array.inject(0, array.error_vector(survivor))
                self._inject_background(side_array, exclude=0)
            self._repair_y(side_array, side_plt)
            if side_array.is_clean(0):
                array.restore(survivor, golden)
        # Hash-2 fixes feed back into a final Hash-1 attempt.
        remaining = self._repair_y(array, plt)
        return bool(remaining)

    # -- campaigns ---------------------------------------------------------------------

    def run(
        self,
        level: str,
        trials: int,
        telemetry: Optional[Telemetry] = None,
        progress=NULL_PROGRESS,
        checkpointer: Optional[Checkpointer] = None,
        deadline: Optional[Deadline] = None,
    ) -> ConditionalResult:
        """Run ``trials`` conditioned trials for level 'Y' or 'Z'.

        :param telemetry: optional :class:`repro.obs.Telemetry` for
            per-trial timing histograms and counters (RNG-neutral).
        :param progress: a :class:`repro.obs.ProgressReporter` fed once
            per conditioned trial.
        :param checkpointer: optional
            :class:`repro.resilience.checkpoint.Checkpointer`; trial
            boundaries are snapshot points, flushed on schedule,
            interrupt, deadline expiry, and completion.  A resumed
            campaign replays the exact trial sequence of an
            uninterrupted same-seed run (every trial draws only from the
            simulator RNG, whose state is checkpointed).
        :param deadline: optional wall-clock
            :class:`repro.resilience.checkpoint.Deadline`; on expiry the
            campaign ends cleanly with partial results.

        ``KeyboardInterrupt`` is caught at the trial boundary and yields
        the partial result (``truncated=True``) instead of discarding
        completed trials.
        """
        trial = {"Y": self.trial_y, "Z": self.trial_z}.get(level.upper())
        if trial is None:
            raise ValueError("conditional campaigns support levels Y and Z")
        tel = resolve_telemetry(telemetry)
        # Phase spans (inject/scrub/correct) record into the campaign's
        # tracer for the duration of the run; a null bundle swaps the
        # no-op tracer back in.
        self._tracer = tel.tracer
        metrics = tel.metrics
        m_trials = metrics.counter(
            "raresim_trials_total",
            "Conditioned rare-event trials completed.",
            labels=("level",),
        )
        m_failures = metrics.counter(
            "raresim_conditional_failures_total",
            "Conditioned trials ending in a group DUE.",
            labels=("level",),
        )
        m_trial_time = metrics.histogram(
            "raresim_trial_seconds",
            "Wall-clock time per conditioned trial.",
            labels=("level",),
            buckets=TRIAL_BUCKETS,
        )
        label = level.upper()
        m_checkpoints = metrics.counter(
            "raresim_checkpoint_writes_total",
            "Rare-event campaign checkpoints flushed.",
        )
        config_fingerprint = {
            "kind": "raresim",
            "level": label,
            "ber": self.ber,
            "trials": trials,
            "group_size": self.group_size,
            "num_groups": self.num_groups,
            "interval_s": self.interval_s,
            "line_bits": self.line_bits,
            "sdr_max_mismatches": self.sdr_max_mismatches,
            # Always present (None when no overlay): an old checkpoint
            # without the key still matches a scenario-free resume, and
            # a scenario resume refuses a scenario-free checkpoint.
            "scenario": (
                self.scenario.as_dict() if self.scenario is not None else None
            ),
        }
        resume = checkpointer.resume if checkpointer is not None else None
        start = 0
        failures = 0
        if resume is not None:
            require_config_match(resume, config_fingerprint)
            start = int(resume["completed"])
            failures = int(resume["aggregates"].get("conditional_failures", 0))
            restore_python_rng_state(self._rng, resume["rng"]["python"])

        def boundary_snapshot(completed: int, failed_so_far: int):
            return build_payload(
                "raresim",
                config_fingerprint,
                completed,
                {"conditional_failures": failed_so_far},
                {"python": python_rng_state(self._rng)},
            )

        def flush_checkpoint(snapshot) -> None:
            with tel.tracer.span("checkpoint_write", path=checkpointer.path):
                checkpointer.save(snapshot)
            if tel.enabled:
                m_checkpoints.inc()

        truncated = False
        stop_reason = ""
        completed = start
        snapshot = boundary_snapshot(start, failures)
        with tel.tracer.span(
            "raresim_campaign", level=label, trials=trials, ber=self.ber,
            group_size=self.group_size,
        ):
            try:
                for _ in range(start, trials):
                    started = time.perf_counter() if tel.enabled else 0.0
                    failed = trial()
                    if failed:
                        failures += 1
                    completed += 1
                    if tel.enabled:
                        m_trials.labels(level=label).inc()
                        if failed:
                            m_failures.labels(level=label).inc()
                        m_trial_time.labels(level=label).observe(
                            time.perf_counter() - started
                        )
                    snapshot = boundary_snapshot(completed, failures)
                    if checkpointer is not None and checkpointer.due(completed):
                        flush_checkpoint(snapshot)
                    if deadline is not None and deadline.expired():
                        truncated = True
                        stop_reason = deadline.reason
                        break
                    progress.update()
            except KeyboardInterrupt:
                # Roll back to the last trial boundary; completed trials
                # are kept, the in-flight one is discarded.
                truncated = True
                stop_reason = "interrupted"
                completed = int(snapshot["completed"])
                failures = int(
                    snapshot["aggregates"]["conditional_failures"]
                )
        if checkpointer is not None:
            flush_checkpoint(snapshot)
        progress.finish()
        return ConditionalResult(
            trials=completed,
            conditional_failures=failures,
            conditioning_probability=self.conditioning_probability,
            ber=self.ber,
            group_size=self.group_size,
            num_groups=self.num_groups,
            interval_s=self.interval_s,
            truncated=truncated,
            stop_reason=stop_reason,
        )


def estimate_fit(
    level: str,
    ber: float,
    trials: int = 2000,
    group_size: int = 64,
    num_groups: int = 2048,
    seed: int = 0,
    telemetry: Optional[Telemetry] = None,
    progress=NULL_PROGRESS,
    checkpointer: Optional[Checkpointer] = None,
    deadline: Optional[Deadline] = None,
    sparse: bool = True,
    backend: Optional[str] = None,
) -> ConditionalResult:
    """Convenience wrapper: conditional FIT estimate for SuDoku-Y or -Z.

    Seed resolution routes through :func:`repro.core.rng.resolve_pyrandom`
    (not an inline ``random.Random(seed)``) so the campaign entry point
    honors the one sanctioned seed policy: explicit seeds derive the
    historical stream bit for bit, and the unseeded path warns once.
    """
    simulator = ConditionalGroupSimulator(
        ber=ber,
        group_size=group_size,
        num_groups=num_groups,
        rng=resolve_pyrandom(seed=seed, owner="estimate_fit"),
        sparse=sparse,
        backend=backend,
    )
    return simulator.run(
        level, trials, telemetry=telemetry, progress=progress,
        checkpointer=checkpointer, deadline=deadline,
    )
