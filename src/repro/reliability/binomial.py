"""Binomial probability utilities in the log domain.

The paper's reliability arithmetic multiplies probabilities ranging from
~1 down to 1e-37 (ECC-6 line failures) and composes them over a million
lines; naive floating point underflows long before that.  Everything here
works from log-probabilities computed with ``lgamma`` and only
exponentiates at the end.
"""

from __future__ import annotations

import math
from typing import Iterable


def log_binomial_coefficient(n: int, k: int) -> float:
    """log C(n, k)."""
    if k < 0 or k > n:
        return float("-inf")
    return (
        math.lgamma(n + 1) - math.lgamma(k + 1) - math.lgamma(n - k + 1)
    )


def log_binomial_pmf(n: int, k: int, p: float) -> float:
    """log P[X = k] for X ~ Binomial(n, p)."""
    if not 0.0 <= p <= 1.0:
        raise ValueError("p must be a probability")
    if k < 0 or k > n:
        return float("-inf")
    if p == 0.0:
        return 0.0 if k == 0 else float("-inf")
    if p == 1.0:
        return 0.0 if k == n else float("-inf")
    return (
        log_binomial_coefficient(n, k)
        + k * math.log(p)
        + (n - k) * math.log1p(-p)
    )


def binomial_pmf(n: int, k: int, p: float) -> float:
    """P[X = k] for X ~ Binomial(n, p), safe at extreme tails."""
    log_value = log_binomial_pmf(n, k, p)
    return math.exp(log_value) if log_value > -745.0 else 0.0


def binomial_tail(n: int, k: int, p: float) -> float:
    """P[X >= k] for X ~ Binomial(n, p).

    Sums pmf terms upward from ``k``; with the p << 1 regimes used here
    successive terms shrink by ~n*p per step, so the sum converges in a
    handful of terms.  A relative-tolerance cut keeps it exact enough for
    moderate p as well.
    """
    if k <= 0:
        return 1.0
    if k > n:
        return 0.0
    total = 0.0
    for i in range(k, n + 1):
        term = binomial_pmf(n, i, p)
        total += term
        if term < total * 1e-18 and i > k:
            break
    return min(total, 1.0)


def binomial_exactly(n: int, k: int, p: float) -> float:
    """Alias of :func:`binomial_pmf` with the call-site-friendly name."""
    return binomial_pmf(n, k, p)


def poisson_tail(mean: float, k: int) -> float:
    """P[X >= k] for X ~ Poisson(mean); binomial limit sanity checks."""
    if mean < 0:
        raise ValueError("mean must be non-negative")
    if k <= 0:
        return 1.0
    log_term = -mean + k * math.log(mean) - math.lgamma(k + 1) if mean > 0 else float("-inf")
    total = 0.0
    term = math.exp(log_term) if log_term > -745.0 else 0.0
    i = k
    while term > 0.0:
        total += term
        i += 1
        term *= mean / i
        if term < total * 1e-18:
            break
    return min(total, 1.0)


def at_least_m_of(n: int, m: int, p_each: float) -> float:
    """P[at least m of n independent events, each of probability p_each].

    The workhorse for "at least two faulty lines in a RAID-Group" style
    compositions.  Thin wrapper over :func:`binomial_tail` named for
    readability at call sites.
    """
    return binomial_tail(n, m, p_each)


def union_bound(probabilities: Iterable[float]) -> float:
    """Upper-bound P[any of the events] by the sum, clipped to 1."""
    return min(sum(probabilities), 1.0)


def complement_power(p_each: float, count: int) -> float:
    """P[at least one of ``count`` iid events] = 1 - (1-p)^count.

    Uses ``expm1``/``log1p`` so tiny per-event probabilities survive:
    for p = 1e-20, count = 2^20 the result is ~1e-14, which the naive
    formula rounds to zero.
    """
    if not 0.0 <= p_each <= 1.0:
        raise ValueError("p_each must be a probability")
    if count < 0:
        raise ValueError("count must be non-negative")
    if p_each == 0.0 or count == 0:
        return 0.0
    if p_each == 1.0:
        return 1.0
    return -math.expm1(count * math.log1p(-p_each))
