"""Sharded campaign executor: K independent shards, one merged result.

The Monte-Carlo and rare-event campaigns are embarrassingly parallel --
every interval/trial is independent by construction (that is also what
makes them checkpointable).  The executor exploits this by splitting a
campaign into K shards, each a *complete* campaign over its slice of the
work with its own deterministically spawned RNG stream, running the
shards across worker processes, and merging the per-shard aggregates:

* ``shards=1`` bypasses every parallel code path and calls the serial
  runner with the exact RNG construction the CLI has always used, so it
  is bit-identical to the pre-sharding behaviour.
* ``shards=K`` is itself deterministic: the same ``(seed, shards)``
  always reproduces the same merged result, because shard streams come
  from ``SeedSequence.spawn`` and merging is order-fixed counter
  addition (:mod:`repro.parallel.merge`).
* Checkpoints compose per shard: shard *i* snapshots to
  ``<base>.shard<i>of<K><ext>`` through the same atomic-write
  checkpointer as serial runs, so a killed-and-resumed sharded campaign
  equals an uninterrupted same-seed/same-K run bit for bit.
* Telemetry composes by merge: each worker records into its own
  registry and tracer, shipped back with the shard result and folded
  into the caller's bundle (:func:`repro.obs.merge_registry` for
  counters, :func:`repro.obs.merge_traces` for spans -- worker phase
  spans land under the parent's ``sharded_campaign`` span, tagged with
  their shard index, in fixed shard order so the merged trace structure
  is reproducible); one aggregated
  :class:`~repro.obs.ProgressReporter` in the parent is fed from a shard
  progress queue.

Workers communicate over a single message queue: ``("resumed", i, n)``
when a shard restores n completed units from its checkpoint,
``("progress", i, n)`` for batched progress, and ``("result", ...)`` /
``("error", ...)`` exactly once per shard.
"""

from __future__ import annotations

import multiprocessing
import os
import random
import signal
import traceback
from dataclasses import dataclass
from queue import Empty
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - cycle: scenario imports this package
    from repro.reliability.scenario import FaultScenario

import numpy as np

from repro.core.rng import resolve_pyrandom
from repro.kernels import BACKEND_NAMES
from repro.obs import (
    NULL_PROGRESS,
    Telemetry,
    export_spans,
    merge_registry,
    merge_traces,
    resolve_telemetry,
)
from repro.parallel.merge import (
    merge_campaign_results,
    merge_conditional_results,
)
from repro.parallel.sharding import (
    shard_checkpoint_path,
    shard_python_seeds,
    spawn_seed_sequences,
    split_units,
)
from repro.reliability.montecarlo import CampaignResult, run_group_campaign
from repro.reliability.raresim import (
    ConditionalGroupSimulator,
    ConditionalResult,
)
from repro.resilience.chaos import ChaosInjector, ChaosPolicy
from repro.resilience.checkpoint import (
    CancelWatch,
    Checkpointer,
    CheckpointError,
    Deadline,
    load_checkpoint,
)

#: Seconds between liveness checks while waiting on shard messages.
_POLL_S = 0.2

#: Prefer fork where the platform offers it (no re-import, ~ms startup);
#: everything shipped to workers is picklable, so spawn works too.
_START_METHOD = (
    "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn"
)


class ShardError(RuntimeError):
    """One or more campaign shards died; carries their tracebacks."""

    def __init__(self, failures: Dict[int, str]) -> None:
        self.failures = dict(failures)
        details = "\n".join(
            f"--- shard {index} ---\n{text}"
            for index, text in sorted(failures.items())
        )
        super().__init__(
            f"{len(failures)} campaign shard(s) failed:\n{details}"
        )


@dataclass(frozen=True)
class _ShardSpec:
    """Everything a worker needs to run one shard (must stay picklable)."""

    kind: str  # "montecarlo" | "raresim" | "scenario"
    index: int
    shards: int
    units: int
    seed: int
    level: str  # campaign level, or the scheme name for scenario shards
    ber: float
    group_size: int
    interval_s: float
    num_groups: int = 0
    chaos_policy: Optional[ChaosPolicy] = None
    chaos_seed: int = 0
    checkpoint_path: str = ""
    checkpoint_every: int = 0
    resume_path: str = ""
    telemetry: bool = False
    deadline_s: Optional[float] = None
    progress_batch: int = 1
    scrub_mode: str = "sparse"
    scenario: Optional["FaultScenario"] = None
    interval_start: int = 0
    backend: str = "reference"


class _ShardProgress:
    """Worker-side progress adapter: batches updates onto the queue.

    Batching by count (not wall clock) keeps the adapter deterministic
    and cheap even for microsecond-scale validation intervals.
    """

    enabled = True

    def __init__(self, queue, index: int, batch: int) -> None:
        self._queue = queue
        self._index = index
        self._batch = max(1, batch)
        self._pending = 0

    def update(self, done: Optional[int] = None, advance: int = 1) -> None:
        self._pending += advance
        if self._pending >= self._batch:
            self._queue.put(("progress", self._index, self._pending))
            self._pending = 0

    def finish(self) -> None:
        if self._pending:
            self._queue.put(("progress", self._index, self._pending))
            self._pending = 0

    def note_resumed(self, units: int) -> None:  # pragma: no cover - unused
        pass


def _shard_checkpointer(
    spec: _ShardSpec, queue
) -> Optional[Checkpointer]:
    """Build the shard's checkpointer; reports any restored offset.

    A shard whose checkpoint file is missing under ``--resume`` starts
    fresh: that is the correct replay for a shard killed before its
    first flush (the parent has already verified that *some* shard file
    exists, so a wholesale wrong path still fails fast).
    """
    if not spec.checkpoint_path:
        return None
    payload = None
    if spec.resume_path and os.path.exists(spec.resume_path):
        payload = load_checkpoint(spec.resume_path, spec.kind)
        queue.put(("resumed", spec.index, int(payload["completed"])))
    return Checkpointer(
        path=spec.checkpoint_path,
        every=spec.checkpoint_every,
        resume=payload,
    )


def _run_shard(
    spec: _ShardSpec, queue
) -> Tuple[object, Optional[object], Optional[List[Dict]]]:
    """Execute one shard; returns (result, metrics or None, spans or None)."""
    telemetry = Telemetry.create() if spec.telemetry else None
    progress = _ShardProgress(queue, spec.index, spec.progress_batch)
    checkpointer = _shard_checkpointer(spec, queue)
    deadline = Deadline(spec.deadline_s) if spec.deadline_s else None
    if spec.kind == "montecarlo":
        rng = np.random.default_rng(
            spawn_seed_sequences(spec.seed, spec.shards)[spec.index]
        )
        chaos = (
            ChaosInjector(
                spec.chaos_policy,
                seed=shard_python_seeds(spec.chaos_seed, spec.shards)[spec.index],
            )
            if spec.chaos_policy is not None
            else None
        )
        result = run_group_campaign(
            spec.level, spec.ber, trials=spec.units,
            group_size=spec.group_size, interval_s=spec.interval_s,
            rng=rng, telemetry=telemetry, progress=progress,
            chaos=chaos, checkpointer=checkpointer, deadline=deadline,
            scrub_mode=spec.scrub_mode, backend=spec.backend,
        )
    elif spec.kind == "raresim":
        simulator = ConditionalGroupSimulator(
            ber=spec.ber, group_size=spec.group_size,
            num_groups=spec.num_groups, interval_s=spec.interval_s,
            rng=random.Random(
                shard_python_seeds(spec.seed, spec.shards)[spec.index]
            ),
            sparse=spec.scrub_mode == "sparse",
            scenario=spec.scenario,
            backend=spec.backend,
        )
        result = simulator.run(
            spec.level, spec.units, telemetry=telemetry, progress=progress,
            checkpointer=checkpointer, deadline=deadline,
        )
    elif spec.kind == "scenario":
        from repro.reliability.scenario import run_scenario_campaign

        # No per-shard RNG objects: scenario streams derive from the
        # *global* interval index, so the shard only needs its slice.
        assert spec.scenario is not None
        result = run_scenario_campaign(
            spec.level, spec.scenario, spec.units,
            group_size=spec.group_size, interval_s=spec.interval_s,
            seed=spec.seed, interval_start=spec.interval_start,
            telemetry=telemetry, progress=progress,
            chaos_policy=spec.chaos_policy, chaos_seed=spec.chaos_seed,
            checkpointer=checkpointer, deadline=deadline,
            scrub_mode=spec.scrub_mode, backend=spec.backend,
        )
    else:  # pragma: no cover - specs are built by this module only
        raise ValueError(f"unknown shard kind {spec.kind!r}")
    if telemetry is None:
        return result, None, None
    # Spans ship as plain dicts (the export_spans wire form): Span
    # objects hold a tracer reference and must not cross the pickle
    # boundary.
    return result, telemetry.metrics, export_spans(telemetry.tracer)


def _shard_worker(spec: _ShardSpec, queue) -> None:
    """Process entry point: run the shard, ship the outcome back."""
    try:
        result, metrics, spans = _run_shard(spec, queue)
        queue.put(("result", spec.index, result, metrics, spans))
    except BaseException:
        queue.put(("error", spec.index, traceback.format_exc()))


def _check_resume_files(specs: List[_ShardSpec]) -> None:
    """Fail fast when a resume finds no shard checkpoints at all."""
    if not any(spec.resume_path for spec in specs):
        return
    if not any(os.path.exists(spec.resume_path) for spec in specs):
        base = specs[0].resume_path
        raise CheckpointError(
            f"no shard checkpoint files found (looked for {base!r} and "
            f"siblings); was the interrupted run sharded with "
            f"--shards {specs[0].shards}?"
        )


def _signal_cancel(processes) -> None:
    """SIGINT live workers so their campaign loops stop at a boundary.

    Workers treat the signal exactly like an operator Ctrl-C: the
    campaign loop catches :class:`KeyboardInterrupt`, flushes its
    checkpoint, and ships a truncated result -- nothing is lost, and the
    parent keeps draining the queue as usual.
    """
    for process in processes:
        if process.is_alive() and process.pid is not None:
            try:
                os.kill(process.pid, signal.SIGINT)
            except (OSError, ProcessLookupError):  # pragma: no cover - race
                pass


def _execute_shards(specs: List[_ShardSpec], telemetry, progress,
                    cancel: Optional[Callable[[], bool]] = None):
    """Run shard specs across processes; returns results in shard order."""
    _check_resume_files(specs)
    context = multiprocessing.get_context(_START_METHOD)
    queue = context.Queue()
    processes = [
        context.Process(target=_shard_worker, args=(spec, queue), daemon=True)
        for spec in specs
    ]
    for process in processes:
        process.start()
    outcomes: Dict[int, Tuple[object, Optional[object], Optional[List[Dict]]]] = {}
    errors: Dict[int, str] = {}
    pending = {spec.index for spec in specs}
    cancelled = False
    try:
        while pending:
            if cancel is not None and not cancelled and cancel():
                cancelled = True
                _signal_cancel(processes)
            try:
                message = queue.get(timeout=_POLL_S)
            except KeyboardInterrupt:
                # The workers received the same SIGINT; their campaign
                # loops catch it, flush checkpoints, and ship truncated
                # results -- keep draining so nothing is lost.
                continue
            except Empty:
                if any(process.is_alive() for process in processes):
                    continue
                # All workers exited; drain stragglers then stop waiting.
                try:
                    message = queue.get(timeout=_POLL_S)
                except Empty:
                    break
            kind = message[0]
            if kind == "progress":
                progress.update(advance=message[2])
            elif kind == "resumed":
                progress.note_resumed(message[2])
            elif kind == "result":
                outcomes[message[1]] = (message[2], message[3], message[4])
                pending.discard(message[1])
            elif kind == "error":
                errors[message[1]] = message[2]
                pending.discard(message[1])
    finally:
        # Bounded joins: a worker blocked mid-send (parent bailed out on
        # an exception) must not hang the shutdown forever.
        for process in processes:
            process.join(timeout=5.0)
        for process in processes:
            if process.is_alive():
                process.terminate()
                process.join(timeout=5.0)
        queue.close()
    for index in pending:
        errors.setdefault(
            index, "shard process died without reporting a result"
        )
    if errors:
        raise ShardError(errors)
    if telemetry is not None:
        # Fixed (sorted-index) merge order: the merged trace structure
        # and counter totals are reproducible for a given (seed, shards).
        for index in sorted(outcomes):
            _, metrics, spans = outcomes[index]
            if metrics is not None:
                merge_registry(telemetry.metrics, metrics)
            if spans:
                merge_traces(telemetry.tracer, spans, shard=index)
    return [outcomes[index][0] for index in sorted(outcomes)]


def _serial_checkpointer(
    kind: str, checkpoint_path: str, checkpoint_every: int, resume_from: str,
    progress,
) -> Optional[Checkpointer]:
    """The single-shard checkpointer (same layout as the pre-sharding CLI)."""
    if not checkpoint_path:
        return None
    payload = None
    if resume_from:
        payload = load_checkpoint(resume_from, kind)
        progress.note_resumed(int(payload["completed"]))
    return Checkpointer(
        path=checkpoint_path, every=checkpoint_every, resume=payload
    )


def _validate(shards: int, units: int, checkpoint_path: str,
              checkpoint_every: int, scrub_mode: str = "sparse",
              backend: str = "reference") -> None:
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    if units < 0:
        raise ValueError(f"work units must be non-negative, got {units}")
    if checkpoint_every and not checkpoint_path:
        raise CheckpointError(
            "periodic checkpointing requires a checkpoint path"
        )
    if scrub_mode not in ("sparse", "dense"):
        # Fail fast in the parent: a bad mode inside a worker would only
        # surface as a ShardError traceback.
        raise ValueError(
            f"scrub_mode must be 'sparse' or 'dense', got {scrub_mode!r}"
        )
    if backend not in BACKEND_NAMES:
        raise ValueError(
            f"backend must be one of {BACKEND_NAMES}, got {backend!r}"
        )


def _progress_batch(units: int) -> int:
    """Batch size keeping each shard to ~50 progress messages."""
    return max(1, units // 50)


def _serial_watch(
    deadline_s: Optional[float], cancel: Optional[Callable[[], bool]]
):
    """The watchdog a serial (shards=1) campaign loop polls.

    A plain :class:`Deadline` when only a budget is set; a
    :class:`CancelWatch` (composing any budget) when a job-level
    cancellation callback is attached; ``None`` when neither is.
    """
    deadline = Deadline(deadline_s) if deadline_s else None
    if cancel is None:
        return deadline
    return CancelWatch(cancel, deadline=deadline)


def run_sharded_campaign(
    level: str,
    ber: float,
    intervals: int,
    group_size: int = 64,
    *,
    shards: int = 1,
    seed: int = 0,
    interval_s: float = 0.020,
    telemetry: Optional[Telemetry] = None,
    progress=NULL_PROGRESS,
    chaos_policy: Optional[ChaosPolicy] = None,
    chaos_seed: int = 0,
    checkpoint_path: str = "",
    checkpoint_every: int = 0,
    resume_from: str = "",
    deadline_s: Optional[float] = None,
    cancel: Optional[Callable[[], bool]] = None,
    scrub_mode: str = "sparse",
    backend: str = "reference",
) -> CampaignResult:
    """Sharded Monte-Carlo campaign (see :func:`run_group_campaign`).

    With ``shards=1`` this delegates to the serial runner with
    ``np.random.default_rng(seed)`` -- bit-identical to the historical
    CLI path.  With ``shards=K`` the intervals are split K ways, each
    shard runs in its own process on its own spawned RNG stream, and the
    merged :class:`CampaignResult` is returned.  ``chaos_policy`` (when
    enabled) gets an independent per-shard chaos stream derived from
    ``chaos_seed`` the same way.  ``scrub_mode`` ("sparse"/"dense")
    reaches every shard; per-seed results are bit-identical either way,
    as is the kernel ``backend`` ("reference"/"numpy").

    ``cancel`` is the job-level cancellation hook (polled between
    intervals): once truthy, the campaign stops at the next boundary
    with checkpoints flushed and returns a truncated result
    (``stop_reason="cancelled"`` serially; sharded workers are SIGINTed
    and report ``"interrupted"``).
    """
    if resume_from and not checkpoint_path:
        checkpoint_path = resume_from
    _validate(shards, intervals, checkpoint_path, checkpoint_every,
              scrub_mode, backend)
    if chaos_policy is not None and not chaos_policy.enabled:
        chaos_policy = None
    if shards == 1:
        checkpointer = _serial_checkpointer(
            "montecarlo", checkpoint_path, checkpoint_every, resume_from,
            progress,
        )
        chaos = (
            ChaosInjector(chaos_policy, seed=chaos_seed)
            if chaos_policy is not None else None
        )
        return run_group_campaign(
            level, ber, trials=intervals, group_size=group_size,
            # The serial path must stay bit-identical to the historical
            # CLI stream, which predates the SeedSequence tree.
            interval_s=interval_s, rng=np.random.default_rng(seed),  # repro-lint: disable=RPR006
            telemetry=telemetry, progress=progress, chaos=chaos,
            checkpointer=checkpointer,
            deadline=_serial_watch(deadline_s, cancel),
            scrub_mode=scrub_mode, backend=backend,
        )
    units = split_units(intervals, shards)
    batch = _progress_batch(intervals)
    specs = [
        _ShardSpec(
            kind="montecarlo", index=index, shards=shards, units=units[index],
            seed=seed, level=level, ber=ber, group_size=group_size,
            interval_s=interval_s, chaos_policy=chaos_policy,
            chaos_seed=chaos_seed,
            checkpoint_path=(
                shard_checkpoint_path(checkpoint_path, index, shards)
                if checkpoint_path else ""
            ),
            checkpoint_every=checkpoint_every,
            resume_path=(
                shard_checkpoint_path(resume_from, index, shards)
                if resume_from else ""
            ),
            telemetry=telemetry is not None, deadline_s=deadline_s,
            progress_batch=batch, scrub_mode=scrub_mode, backend=backend,
        )
        for index in range(shards)
    ]
    tel = resolve_telemetry(telemetry)
    with tel.tracer.span(
        "sharded_campaign", level=level, ber=ber, intervals=intervals,
        shards=shards,
    ):
        results = _execute_shards(specs, telemetry, progress, cancel=cancel)
    progress.finish()
    return merge_campaign_results(results)


def run_sharded_raresim(
    level: str,
    ber: float,
    trials: int,
    group_size: int = 64,
    num_groups: int = 2048,
    *,
    shards: int = 1,
    seed: int = 0,
    interval_s: float = 0.020,
    telemetry: Optional[Telemetry] = None,
    progress=NULL_PROGRESS,
    checkpoint_path: str = "",
    checkpoint_every: int = 0,
    resume_from: str = "",
    deadline_s: Optional[float] = None,
    cancel: Optional[Callable[[], bool]] = None,
    scrub_mode: str = "sparse",
    scenario: Optional["FaultScenario"] = None,
    backend: str = "reference",
) -> ConditionalResult:
    """Sharded conditional rare-event campaign (see ``estimate_fit``).

    ``shards=1`` matches :func:`repro.reliability.raresim.estimate_fit`
    with ``random.Random(seed)`` bit for bit; ``shards=K`` splits the
    trials across processes with per-shard stdlib RNG streams derived
    from the same seed tree, then merges the conditional aggregates.
    ``scrub_mode`` controls the simulator's trusted-clean scan fast path
    ("sparse", the default) vs full decodes ("dense"); trial outcomes
    are bit-identical in both modes.  ``scenario`` overlays per-group
    stuck-at maps and per-trial bursts on the conditioned transients.
    ``backend`` selects the kernel backend in every shard; outcomes are
    bit-identical across backends.  ``cancel`` behaves as in
    :func:`run_sharded_campaign`.
    """
    if resume_from and not checkpoint_path:
        checkpoint_path = resume_from
    _validate(shards, trials, checkpoint_path, checkpoint_every,
              scrub_mode, backend)
    if shards == 1:
        checkpointer = _serial_checkpointer(
            "raresim", checkpoint_path, checkpoint_every, resume_from,
            progress,
        )
        simulator = ConditionalGroupSimulator(
            ber=ber, group_size=group_size, num_groups=num_groups,
            # Serial path: bit-identical to the historical stdlib stream
            # (resolve_pyrandom(seed=s) is exactly random.Random(s)).
            interval_s=interval_s,
            rng=resolve_pyrandom(seed=seed, owner="run_sharded_raresim"),
            sparse=scrub_mode == "sparse",
            scenario=scenario,
            backend=backend,
        )
        return simulator.run(
            level, trials, telemetry=telemetry, progress=progress,
            checkpointer=checkpointer,
            deadline=_serial_watch(deadline_s, cancel),
        )
    units = split_units(trials, shards)
    batch = _progress_batch(trials)
    specs = [
        _ShardSpec(
            kind="raresim", index=index, shards=shards, units=units[index],
            seed=seed, level=level, ber=ber, group_size=group_size,
            interval_s=interval_s, num_groups=num_groups,
            checkpoint_path=(
                shard_checkpoint_path(checkpoint_path, index, shards)
                if checkpoint_path else ""
            ),
            checkpoint_every=checkpoint_every,
            resume_path=(
                shard_checkpoint_path(resume_from, index, shards)
                if resume_from else ""
            ),
            telemetry=telemetry is not None, deadline_s=deadline_s,
            progress_batch=batch, scrub_mode=scrub_mode,
            scenario=scenario, backend=backend,
        )
        for index in range(shards)
    ]
    tel = resolve_telemetry(telemetry)
    with tel.tracer.span(
        "sharded_raresim", level=level, ber=ber, trials=trials, shards=shards,
    ):
        results = _execute_shards(specs, telemetry, progress, cancel=cancel)
    progress.finish()
    return merge_conditional_results(results)


def run_sharded_scenario(
    scheme: str,
    scenario: "FaultScenario",
    intervals: int,
    group_size: int = 8,
    *,
    shards: int = 1,
    seed: int = 0,
    interval_s: float = 0.020,
    telemetry: Optional[Telemetry] = None,
    progress=NULL_PROGRESS,
    chaos_policy: Optional[ChaosPolicy] = None,
    chaos_seed: int = 0,
    checkpoint_path: str = "",
    checkpoint_every: int = 0,
    resume_from: str = "",
    deadline_s: Optional[float] = None,
    cancel: Optional[Callable[[], bool]] = None,
    scrub_mode: str = "sparse",
    backend: str = "reference",
) -> CampaignResult:
    """Sharded mixed-fault scenario campaign (see
    :func:`repro.reliability.scenario.run_scenario_campaign`).

    Scenario campaigns derive every random draw from the *global*
    interval index, so sharding is pure interval partitioning: shard
    ``i`` owns the contiguous slice starting at ``sum(units[:i])`` and
    re-derives exactly the streams the serial run uses for those
    intervals.  The merged result is therefore bit-identical to
    ``shards=1`` at the same seed -- a stronger property than the
    Monte-Carlo runner (whose K-shard result is deterministic but a
    *different* quantity than serial), and the one the acceptance tests
    pin.  ``shards=1`` runs in-process with no worker machinery.
    """
    from repro.reliability.scenario import run_scenario_campaign

    if resume_from and not checkpoint_path:
        checkpoint_path = resume_from
    _validate(shards, intervals, checkpoint_path, checkpoint_every,
              scrub_mode, backend)
    if chaos_policy is not None and not chaos_policy.enabled:
        chaos_policy = None
    if shards == 1:
        checkpointer = _serial_checkpointer(
            "scenario", checkpoint_path, checkpoint_every, resume_from,
            progress,
        )
        return run_scenario_campaign(
            scheme, scenario, intervals, group_size=group_size,
            interval_s=interval_s, seed=seed, telemetry=telemetry,
            progress=progress, chaos_policy=chaos_policy,
            chaos_seed=chaos_seed, checkpointer=checkpointer,
            deadline=_serial_watch(deadline_s, cancel),
            scrub_mode=scrub_mode, backend=backend,
        )
    units = split_units(intervals, shards)
    starts = [sum(units[:index]) for index in range(shards)]
    batch = _progress_batch(intervals)
    specs = [
        _ShardSpec(
            kind="scenario", index=index, shards=shards, units=units[index],
            seed=seed, level=scheme, ber=scenario.transient_ber,
            group_size=group_size, interval_s=interval_s,
            chaos_policy=chaos_policy, chaos_seed=chaos_seed,
            checkpoint_path=(
                shard_checkpoint_path(checkpoint_path, index, shards)
                if checkpoint_path else ""
            ),
            checkpoint_every=checkpoint_every,
            resume_path=(
                shard_checkpoint_path(resume_from, index, shards)
                if resume_from else ""
            ),
            telemetry=telemetry is not None, deadline_s=deadline_s,
            progress_batch=batch, scrub_mode=scrub_mode,
            scenario=scenario, interval_start=starts[index],
            backend=backend,
        )
        for index in range(shards)
    ]
    tel = resolve_telemetry(telemetry)
    with tel.tracer.span(
        "sharded_scenario", scheme=scheme, intervals=intervals, shards=shards,
    ):
        results = _execute_shards(specs, telemetry, progress, cancel=cancel)
    progress.finish()
    return merge_campaign_results(results)
