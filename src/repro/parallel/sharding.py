"""Deterministic shard arithmetic: unit splits, RNG streams, paths.

A sharded campaign is *defined* by three pure functions of
``(seed, shards)``:

* :func:`split_units` -- how many intervals/trials each shard owns;
* :func:`spawn_generators` / :func:`shard_python_seeds` -- the per-shard
  RNG streams, derived with ``numpy.random.SeedSequence.spawn`` so the
  streams are statistically independent *and* reproducible: the same
  ``(seed, shards)`` always yields the same K streams, regardless of how
  the shards are scheduled across processes;
* :func:`shard_checkpoint_path` -- where each shard snapshots its state.

Keeping these deterministic is what makes the merged result of a
sharded campaign a well-defined quantity ("the K-shard outcome of seed
S") that a killed-and-resumed run can reproduce bit for bit.
"""

from __future__ import annotations

import os
from typing import List

import numpy as np

#: How many 32-bit words of SeedSequence output feed each derived
#: ``random.Random`` seed (128 bits, matching numpy's own default pool).
_PYTHON_SEED_WORDS = 4


def split_units(total: int, shards: int) -> List[int]:
    """Balanced split of ``total`` work units across ``shards``.

    The first ``total % shards`` shards take one extra unit, so shard
    sizes differ by at most one and the assignment is a pure function of
    ``(total, shards)``.
    """
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    if total < 0:
        raise ValueError(f"total units must be non-negative, got {total}")
    base, extra = divmod(total, shards)
    return [base + (1 if index < extra else 0) for index in range(shards)]


def spawn_seed_sequences(seed: int, shards: int) -> List[np.random.SeedSequence]:
    """The K child ``SeedSequence``s of campaign ``seed``."""
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    return list(np.random.SeedSequence(seed).spawn(shards))


def spawn_generators(seed: int, shards: int) -> List[np.random.Generator]:
    """Independent per-shard numpy generators for campaign ``seed``."""
    return [
        np.random.default_rng(sequence)
        for sequence in spawn_seed_sequences(seed, shards)
    ]


def shard_python_seeds(seed: int, shards: int) -> List[int]:
    """Independent per-shard seeds for ``random.Random`` campaigns.

    Rare-event (and chaos) streams use the stdlib RNG; their shard seeds
    are drawn from the same spawned ``SeedSequence`` tree as the numpy
    streams, so one campaign seed governs every stream in the run.
    """
    seeds = []
    for sequence in spawn_seed_sequences(seed, shards):
        words = sequence.generate_state(_PYTHON_SEED_WORDS, dtype=np.uint32)
        seeds.append(int.from_bytes(words.tobytes(), "little"))
    return seeds


def interval_seed_sequence(seed: int, index: int) -> np.random.SeedSequence:
    """The per-interval child ``SeedSequence`` of a scenario campaign.

    ``SeedSequence(seed, spawn_key=(index,))`` is by construction the
    same sequence as ``SeedSequence(seed).spawn(n)[index]`` for any
    ``n > index``, so per-interval streams can be derived directly from
    the *global* interval index without knowing how many intervals the
    campaign has or which shard owns this one.  That property is what
    makes scenario campaigns shard-invariant: serial and K-sharded runs
    consume identical randomness per interval.
    """
    if index < 0:
        raise ValueError(f"index must be non-negative, got {index}")
    return np.random.SeedSequence(seed, spawn_key=(index,))


def interval_generator(seed: int, index: int) -> np.random.Generator:
    """Numpy generator for one (campaign seed, global index) pair."""
    return np.random.default_rng(interval_seed_sequence(seed, index))


def interval_python_seed(seed: int, index: int) -> int:
    """Stdlib-RNG seed for one (campaign seed, global index) pair.

    Used for the per-interval chaos injectors of scenario campaigns:
    deriving a fresh injector per interval (instead of threading one
    stateful stream through the loop) keeps chaos composable with
    sharding and RNG-free checkpoints.
    """
    words = interval_seed_sequence(seed, index).generate_state(
        _PYTHON_SEED_WORDS, dtype=np.uint32
    )
    return int.from_bytes(words.tobytes(), "little")


def shard_checkpoint_path(base: str, index: int, shards: int) -> str:
    """Per-shard checkpoint file derived from the base ``--checkpoint``.

    ``ck.json`` with 4 shards maps to ``ck.shard0of4.json`` ...
    ``ck.shard3of4.json``: the shard count is part of the name, so a
    resume under a different ``--shards`` cannot silently pick up
    incompatible snapshots (it finds no files and fails fast instead).
    """
    if not base:
        raise ValueError("checkpoint base path must be non-empty")
    if not 0 <= index < shards:
        raise ValueError(f"shard index {index} out of range for {shards} shards")
    root, extension = os.path.splitext(base)
    return f"{root}.shard{index}of{shards}{extension}"
