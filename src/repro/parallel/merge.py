"""Merging per-shard campaign aggregates into one result.

Both campaign result types are sums of per-interval (per-trial)
observations, so merging shards is pure counter addition -- commutative
and associative.  The runner still merges in shard-index order so the
merged object (including dict insertion order in ``as_dict``) is
byte-stable across runs of the same ``(seed, shards)``.
"""

from __future__ import annotations

from collections import Counter
from typing import Sequence

from repro.reliability.montecarlo import CampaignResult
from repro.reliability.raresim import ConditionalResult


def _merged_stop_reason(results: Sequence) -> str:
    """Strongest truncation cause wins; empty when nothing truncated.

    'interrupted' (operator action) dominates 'cancelled' (job-level
    cancellation), which dominates 'deadline' (budget expiry).
    """
    reasons = {result.stop_reason for result in results if result.truncated}
    for reason in ("interrupted", "cancelled", "deadline"):
        if reason in reasons:
            return reason
    return ""


def _require_same(results: Sequence, attribute: str) -> object:
    values = {getattr(result, attribute) for result in results}
    if len(values) != 1:
        raise ValueError(
            f"cannot merge shards with differing {attribute}: {sorted(values)}"
        )
    return values.pop()


def merge_campaign_results(results: Sequence[CampaignResult]) -> CampaignResult:
    """Combine per-shard Monte-Carlo aggregates into one campaign result.

    Shards must share ``ber``/``interval_s``/``lines`` (they are slices
    of one campaign); intervals, outcome counters, failure counts, and
    chaos metadata add up.  A merged result is truncated when any shard
    was.
    """
    if not results:
        raise ValueError("no shard results to merge")
    merged = CampaignResult(
        intervals=sum(result.intervals for result in results),
        ber=float(_require_same(results, "ber")),
        interval_s=float(_require_same(results, "interval_s")),
        lines=int(_require_same(results, "lines")),
    )
    for result in results:
        merged.outcomes.update(result.outcomes)
        merged.metadata.update(result.metadata)
        merged.interval_failures += result.interval_failures
    merged.truncated = any(result.truncated for result in results)
    merged.stop_reason = _merged_stop_reason(results)
    return merged


def merge_conditional_results(
    results: Sequence[ConditionalResult],
) -> ConditionalResult:
    """Combine per-shard rare-event aggregates into one result.

    Trials and conditional failures add; the conditioning probability
    and geometry are properties of the campaign configuration and must
    agree across shards.
    """
    if not results:
        raise ValueError("no shard results to merge")
    return ConditionalResult(
        trials=sum(result.trials for result in results),
        conditional_failures=sum(
            result.conditional_failures for result in results
        ),
        conditioning_probability=float(
            _require_same(results, "conditioning_probability")
        ),
        ber=float(_require_same(results, "ber")),
        group_size=int(_require_same(results, "group_size")),
        num_groups=int(_require_same(results, "num_groups")),
        interval_s=float(_require_same(results, "interval_s")),
        truncated=any(result.truncated for result in results),
        stop_reason=_merged_stop_reason(results),
    )


# Counter is re-exported for callers that accumulate outcomes manually.
__all__ = [
    "Counter",
    "merge_campaign_results",
    "merge_conditional_results",
]
