"""repro.parallel -- sharded execution of Monte-Carlo campaigns.

The reliability campaigns dominate the wall-clock cost of the whole
evaluation and are embarrassingly parallel (independent intervals).
This package splits a campaign into K deterministic shards run across a
process pool and merges the aggregates:

* :func:`run_sharded_campaign` -- sharded Monte-Carlo fault injection
  (``--shards`` on the ``campaign`` and ``chaos`` CLI subcommands);
* :func:`run_sharded_raresim` -- sharded conditional rare-event FIT
  estimation (``--shards`` on ``raresim``);
* :func:`run_sharded_scenario` -- sharded mixed transient/burst/stuck-at
  scenario campaigns (``--shards`` on ``scenario``), whose merged result
  is bit-identical to the serial run at the same seed;
* :mod:`repro.parallel.sharding` -- the deterministic shard arithmetic
  (unit splits, ``SeedSequence.spawn`` streams, checkpoint paths);
* :mod:`repro.parallel.merge` -- per-shard aggregate merging.

See ``docs/parallelism.md`` for the seeding model, per-shard checkpoint
layout, and merge semantics.
"""

from repro.parallel.merge import (
    merge_campaign_results,
    merge_conditional_results,
)
from repro.parallel.runner import (
    ShardError,
    run_sharded_campaign,
    run_sharded_raresim,
    run_sharded_scenario,
)
from repro.parallel.sharding import (
    interval_generator,
    interval_python_seed,
    interval_seed_sequence,
    shard_checkpoint_path,
    shard_python_seeds,
    spawn_generators,
    spawn_seed_sequences,
    split_units,
)

__all__ = [
    "ShardError",
    "run_sharded_campaign",
    "run_sharded_raresim",
    "run_sharded_scenario",
    "merge_campaign_results",
    "merge_conditional_results",
    "split_units",
    "spawn_seed_sequences",
    "spawn_generators",
    "shard_python_seeds",
    "shard_checkpoint_path",
    "interval_seed_sequence",
    "interval_generator",
    "interval_python_seed",
]
