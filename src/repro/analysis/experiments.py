"""One function per paper exhibit.

Each function regenerates a table or figure of the paper and returns a
``{"title", "headers", "rows", "notes"}`` dict, with paper-quoted values
alongside the reproduced ones wherever the paper states them.  The
benchmark harnesses under ``benchmarks/`` print these; EXPERIMENTS.md
records a snapshot.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.config import PAPER
from repro.core.stats import LatencyModel
from repro.reliability.baselinemodel import (
    cppc_model,
    ecc6_per_line_model,
    hiecc_model,
    raid6_model,
    twodp_model,
)
from repro.reliability.eccmodel import ECCCacheModel, table2_rows
from repro.reliability.fit import fit_to_mttf_hours
from repro.reliability.sram import sram_vmin_table
from repro.reliability.sudokumodel import SuDokuReliabilityModel
from repro.sttram.variation import effective_ber

#: Default evaluation point (Table I / section III).
DEFAULT_BER = 5.3e-6


def table1_ber() -> Dict[str, object]:
    """Table I: thermal stability vs bit error rate over 20 ms."""
    rows = []
    for delta, paper_value in ((60.0, PAPER.ber_delta60_20ms), (35.0, PAPER.ber_delta35_20ms)):
        measured = effective_ber(delta, 0.10 * delta, 0.020)
        rows.append([delta, measured, paper_value])
    return {
        "title": "Table I: thermal stability vs error rate (20 ms)",
        "headers": ["delta", "BER (model)", "BER (paper)"],
        "rows": rows,
        "notes": "Eq. (1) averaged over delta ~ N(mu, 0.1*mu).",
    }


def table2_ecc_fit(ber: float = DEFAULT_BER) -> Dict[str, object]:
    """Table II: FIT of uniform per-line ECC-1..6."""
    rows = []
    for index, row in enumerate(table2_rows(ber=ber)):
        rows.append(
            [
                row["ecc"],
                row["line_failure"],
                PAPER.ecc_line_failure_20ms[index],
                row["cache_failure"],
                PAPER.ecc_cache_failure_20ms[index],
                row["fit"],
                PAPER.ecc_fit[index],
            ]
        )
    return {
        "title": "Table II: FIT of 64MB cache vs ECC strength",
        "headers": [
            "scheme", "P(line) model", "P(line) paper",
            "P(cache) model", "P(cache) paper", "FIT model", "FIT paper",
        ],
        "rows": rows,
        "notes": f"BER {ber} per 20 ms scrub interval, 2^20 lines.",
    }


def table3_sdc(ber: float = DEFAULT_BER) -> Dict[str, object]:
    """Table III: SDC rate of SuDoku-X."""
    model = SuDokuReliabilityModel(ber=ber)
    components = model.sdc_components()
    rows = [
        ["events: 7 faults/line (FIT)", components["events_7_faults"], 191.0],
        ["events: 8+ faults/line (FIT)", components["events_8plus_faults"], 0.09],
        ["CRC-31 misdetection", model.crc_misdetect, PAPER.crc31_misdetect],
        ["SDC FIT (total)", model.sdc_fit(), PAPER.sudoku_x_sdc_fit],
    ]
    return {
        "title": "Table III: SDC rates of SuDoku-X",
        "headers": ["quantity", "model", "paper"],
        "rows": rows,
        "notes": (
            "Our event rates use exact per-line fault-count tails; the "
            "paper's 191-FIT row matches the >=6-fault tail instead, and "
            "its total (8.9e-9) is inconsistent with its own factors "
            "(191 * 2^-31 = 8.9e-8) -- see EXPERIMENTS.md."
        ),
    }


def fig3_sdr_cases(
    trials: int = 200_000,
    line_bits: int = 553,
    rng: Optional[random.Random] = None,
) -> Dict[str, object]:
    """Fig. 3: overlap-case split for two 2-fault lines (Monte Carlo)."""
    generator = rng if rng is not None else random.Random(2024)
    counts = [0, 0, 0]
    for _ in range(trials):
        first = set(generator.sample(range(line_bits), 2))
        second = set(generator.sample(range(line_bits), 2))
        counts[len(first & second)] += 1
    total = float(trials)
    analytic_two = 2.0 / (line_bits * (line_bits - 1))
    analytic_one = (
        2 * 2 * (line_bits - 2) / (line_bits * (line_bits - 1) / 1.0)
    )  # choose one shared + one distinct each, over C(n,2)
    rows = [
        ["no overlap", counts[0] / total, 1 - analytic_one - analytic_two, PAPER.sdr_no_overlap_fraction],
        ["one overlap", counts[1] / total, analytic_one, PAPER.sdr_one_overlap_fraction],
        ["two overlaps", counts[2] / total, analytic_two, PAPER.sdr_two_overlap_fraction],
    ]
    return {
        "title": "Fig. 3: SDR scenarios for two 2-fault lines",
        "headers": ["case", "monte carlo", "analytic", "paper"],
        "rows": rows,
        "notes": (
            f"{trials} trials over {line_bits} coded bits; the paper "
            "computes over the 512 data bits, hence its slightly larger "
            "overlap fractions."
        ),
    }


def fig7_reliability(ber: float = DEFAULT_BER) -> Dict[str, object]:
    """Fig. 7 (plus section headlines): MTTF/FIT of X, Y, Z vs ECC-6."""
    model = SuDokuReliabilityModel(ber=ber)
    ecc6 = ECCCacheModel(t=6, ber=ber)
    rows = [
        ["SuDoku-X MTTF (s)", model.mttf_x_seconds(), PAPER.sudoku_x_mttf_s],
        ["SuDoku-Y MTTF (h)", model.mttf_y_seconds() / 3600.0, PAPER.sudoku_y_mttf_hours],
        ["SuDoku-Z FIT", model.fit_z(), PAPER.sudoku_z_fit],
        ["ECC-6 FIT", ecc6.fit(), PAPER.ecc_fit[5]],
        [
            "SuDoku-Z strength vs ECC-6",
            ecc6.fit() / model.fit_z(),
            PAPER.sudoku_z_vs_ecc6,
        ],
        ["SuDoku-Z (no SDR) FIT", model.fit_z_without_sdr(), PAPER.sudoku_z_alone_fit],
    ]
    return {
        "title": "Fig. 7: SuDoku-X/Y/Z vs ECC-6",
        "headers": ["quantity", "model", "paper"],
        "rows": rows,
        "notes": (
            "Y's closed form follows the functional engine's rules "
            "(validated by Monte-Carlo); the paper's Y accounting is more "
            "pessimistic -- ordering and conclusions are unchanged."
        ),
    }


def table4_sram() -> Dict[str, object]:
    """Table IV: SRAM low-voltage study."""
    paper_values = {
        "ECC-7": PAPER.sram_cache_fail_ecc7,
        "ECC-8": PAPER.sram_cache_fail_ecc8,
        "ECC-9": PAPER.sram_cache_fail_ecc9,
    }
    rows = []
    for row in sram_vmin_table():
        paper_value = paper_values.get(str(row["scheme"]))
        if str(row["scheme"]).startswith("SuDoku"):
            paper_value = PAPER.sram_cache_fail_sudoku
        rows.append(
            [row["scheme"], row["cache_failure"], paper_value, row["overhead_bits_per_line"]]
        )
    return {
        "title": "Table IV: probability of SRAM cache failure (BER 1e-3)",
        "headers": ["scheme", "P(cache fail) model", "paper", "bits/line"],
        "rows": rows,
        "notes": (
            "SuDoku rows use the persistent-fault (position-learning) "
            "model at several RAID-Group sizes; the paper's single SuDoku "
            "number does not state its group size (EXPERIMENTS.md)."
        ),
    }


def table8_scrub_interval() -> Dict[str, object]:
    """Table VIII: FIT vs scrub interval."""
    rows = []
    for interval_s, paper_ber, paper_ecc5, paper_ecc6, paper_z in PAPER.scrub_sweep:
        ber = effective_ber(35.0, 3.5, interval_s)
        ecc5 = ECCCacheModel(t=5, ber=ber, interval_s=interval_s).fit()
        ecc6 = ECCCacheModel(t=6, ber=ber, interval_s=interval_s).fit()
        sudoku_z = SuDokuReliabilityModel(ber=ber, interval_s=interval_s).fit_z()
        rows.append(
            [
                f"{interval_s * 1000:.0f}ms",
                ber, paper_ber,
                ecc5, paper_ecc5,
                ecc6, paper_ecc6,
                sudoku_z, paper_z,
            ]
        )
    return {
        "title": "Table VIII: FIT vs scrub interval",
        "headers": [
            "interval", "BER", "BER paper", "ECC-5", "ECC-5 paper",
            "ECC-6", "ECC-6 paper", "SuDoku-Z", "Z paper",
        ],
        "rows": rows,
        "notes": "BER recomputed from the thermal model per interval.",
    }


def table9_cache_size(ber: float = DEFAULT_BER) -> Dict[str, object]:
    """Table IX: FIT vs cache size (SuDoku-Z)."""
    rows = []
    for size_mb, paper_fit in PAPER.size_sweep:
        num_lines = size_mb * 1024 * 1024 // 64
        model = SuDokuReliabilityModel(ber=ber, num_lines=num_lines)
        rows.append([f"{size_mb}MB", model.fit_z(), paper_fit])
    return {
        "title": "Table IX: sensitivity to cache size",
        "headers": ["cache", "SuDoku-Z FIT model", "paper"],
        "rows": rows,
        "notes": "FIT scales linearly with the number of RAID-Groups.",
    }


def table10_delta() -> Dict[str, object]:
    """Table X: impact of thermal stability."""
    rows = []
    for delta, paper_ecc6, paper_sudoku, paper_strength in PAPER.delta_sweep:
        ber = effective_ber(float(delta), 0.10 * delta, 0.020)
        ecc6 = ECCCacheModel(t=6, ber=ber).fit()
        sudoku = SuDokuReliabilityModel(ber=ber).fit_z()
        strength = ecc6 / sudoku if sudoku > 0 else float("inf")
        rows.append(
            [delta, ber, ecc6, paper_ecc6, sudoku, paper_sudoku, strength, paper_strength]
        )
    return {
        "title": "Table X: impact of delta (ECC-6 vs SuDoku)",
        "headers": [
            "delta", "BER", "ECC-6 FIT", "ECC-6 paper",
            "SuDoku FIT", "SuDoku paper", "strength", "strength paper",
        ],
        "rows": rows,
        "notes": "BERs derived from the thermal model at each delta.",
    }


def table11_baselines(ber: float = DEFAULT_BER) -> Dict[str, object]:
    """Table XI: CPPC / RAID-6 / 2DP vs SuDoku."""
    sudoku = SuDokuReliabilityModel(ber=ber)
    rows = [
        ["CPPC + CRC-31", cppc_model(ber).fit, PAPER.fit_cppc],
        ["RAID-6 + CRC-31", raid6_model(ber).fit, PAPER.fit_raid6],
        ["2DP + ECC-1 + CRC-31", twodp_model(ber).fit, PAPER.fit_2dp],
        ["SuDoku", sudoku.fit_z(), PAPER.sudoku_z_fit],
    ]
    return {
        "title": "Table XI: comparing CPPC, RAID-6, 2DP with SuDoku",
        "headers": ["scheme", "FIT model", "FIT paper"],
        "rows": rows,
        "notes": "All schemes provisioned with SuDoku-equivalent resources.",
    }


def table12_hiecc(ber: float = DEFAULT_BER) -> Dict[str, object]:
    """Table XII: SuDoku vs Hi-ECC."""
    sudoku = SuDokuReliabilityModel(ber=ber)
    rows = [
        ["SuDoku", sudoku.fit_z(), PAPER.sudoku_z_fit],
        ["Hi-ECC", hiecc_model(ber).fit, PAPER.fit_hiecc],
    ]
    return {
        "title": "Table XII: SuDoku vs Hi-ECC",
        "headers": ["scheme", "FIT model", "FIT paper"],
        "rows": rows,
        "notes": "Hi-ECC: ECC-6 over 1 KB regions (GF(2^14), 84 check bits).",
    }


def latency_summary(group_size: int = 512) -> Dict[str, object]:
    """Section VII-B: correction latency accounting."""
    latency = LatencyModel()
    rows = [
        ["ECC-1 repair (ns)", latency.ecc1_repair() * 1e9, None],
        ["RAID-4 repair (us)", latency.raid4_repair(group_size) * 1e6, PAPER.latency_raid4_s * 1e6],
        ["SDR repair (us)", latency.sdr_repair(group_size, trials=6) * 1e6, PAPER.latency_sdr_s * 1e6],
        [
            "SuDoku-Z repair (us)",
            latency.hash2_repair(group_size, groups_read=2) * 1e6,
            PAPER.latency_hash2_s * 1e6,
        ],
    ]
    return {
        "title": "Section VII-B: correction latencies",
        "headers": ["mechanism", "model", "paper"],
        "rows": rows,
        "notes": (
            "Paper quotes 16us as the per-20ms budget for ~4 repairs of "
            "~4us each; the model reports per-event latency."
        ),
    }


def storage_summary() -> Dict[str, object]:
    """Section VII-H: storage overhead comparison."""
    from repro.core.layout import LineLayout

    layout = LineLayout()
    plt_bits = 2.0 * layout.stored_bits * (1 << 11) / (1 << 20)  # 2 PLTs, 2^11 groups
    rows = [
        ["ECC-1 bits/line", layout.ecc_bits, 10],
        ["CRC-31 bits/line", layout.crc_bits, 31],
        ["PLT bits/line (2 tables)", plt_bits, 2],
        ["SuDoku total bits/line", layout.overhead_bits + plt_bits, PAPER.overhead_bits_sudoku],
        ["ECC-6 bits/line", 60, PAPER.overhead_bits_ecc6],
    ]
    return {
        "title": "Section VII-H: storage overheads",
        "headers": ["component", "model", "paper"],
        "rows": rows,
        "notes": "Parity lines protect 553 stored bits, hence slightly over 2 bits/line.",
    }


def fig8_performance(
    workloads: Optional[Sequence[str]] = None,
    accesses_per_core: int = 20_000,
    seed: int = 1,
    warmup_accesses_per_core: int = 0,
) -> Dict[str, object]:
    """Fig. 8: execution time of SuDoku-Z normalised to the ideal cache."""
    from repro.perf.system import compare_ideal_vs_sudoku, normalized_slowdown
    from repro.perf.workloads import suite_names

    chosen = list(workloads) if workloads is not None else suite_names()
    rows = []
    slowdowns = []
    for workload in chosen:
        results = compare_ideal_vs_sudoku(
            workload, accesses_per_core=accesses_per_core, seed=seed,
            warmup_accesses_per_core=warmup_accesses_per_core,
        )
        slowdown = normalized_slowdown(results)
        slowdowns.append(slowdown)
        rows.append(
            [
                workload,
                results["ideal"].execution_time_s * 1e3,
                results["sudoku"].execution_time_s * 1e3,
                slowdown * 100.0,
                results["sudoku"].miss_rate,
            ]
        )
    rows.append(
        ["MEAN", None, None, float(np.mean(slowdowns)) * 100.0, None]
    )
    return {
        "title": "Fig. 8: execution time normalised to ideal (slowdown %)",
        "headers": ["workload", "ideal (ms)", "sudoku (ms)", "slowdown %", "miss rate"],
        "rows": rows,
        "notes": f"Paper reports ~{PAPER.mean_slowdown_fraction * 100:.2f}% average slowdown.",
    }


def fig9_edp(
    workloads: Optional[Sequence[str]] = None,
    accesses_per_core: int = 20_000,
    seed: int = 1,
) -> Dict[str, object]:
    """Fig. 9: system EDP of SuDoku-Z normalised to the ideal cache."""
    from repro.perf.energy import EnergyModel, edp_increase
    from repro.perf.system import compare_ideal_vs_sudoku
    from repro.perf.workloads import suite_names

    chosen = list(workloads) if workloads is not None else suite_names()
    model = EnergyModel()
    rows = []
    increases = []
    for workload in chosen:
        results = compare_ideal_vs_sudoku(
            workload, accesses_per_core=accesses_per_core, seed=seed
        )
        increase = edp_increase(results["ideal"], results["sudoku"], model)
        increases.append(increase)
        rows.append([workload, increase * 100.0])
    rows.append(["MEAN", float(np.mean(increases)) * 100.0])
    return {
        "title": "Fig. 9: normalised system EDP increase (%)",
        "headers": ["workload", "EDP increase %"],
        "rows": rows,
        "notes": f"Paper reports at most ~{PAPER.max_edp_increase_fraction * 100:.1f}% EDP increase.",
    }


def tornado_summary() -> Dict[str, object]:
    """Extension: ranked FIT sensitivity around the nominal design point."""
    from repro.reliability.sensitivity import tornado

    rows = [
        [
            entry.parameter,
            f"{entry.low_label} .. {entry.high_label}",
            entry.fit_low,
            entry.fit_high,
            entry.swing_orders,
        ]
        for entry in tornado()
    ]
    return {
        "title": "Sensitivity tornado: SuDoku-Z FIT around the nominal point",
        "headers": ["parameter", "range", "FIT(low)", "FIT(high)", "swing (orders)"],
        "rows": rows,
        "notes": "Device physics dominates; scrub interval is the strongest "
                 "runtime actuator.",
    }


def all_experiments() -> List[Dict[str, object]]:
    """Every analytic exhibit (performance figures excluded for runtime)."""
    return [
        table1_ber(),
        table2_ecc_fit(),
        table3_sdc(),
        fig3_sdr_cases(trials=50_000),
        fig7_reliability(),
        table4_sram(),
        table8_scrub_interval(),
        table9_cache_size(),
        table10_delta(),
        table11_baselines(),
        table12_hiecc(),
        latency_summary(),
        storage_summary(),
        tornado_summary(),
    ]
