"""Fixed-width table rendering for benchmark output.

Every benchmark prints its regenerated table through these helpers so
the ``paper`` and ``measured`` columns line up and the output reads like
the paper's exhibits.
"""

from __future__ import annotations

from typing import List, Sequence


def format_value(value: object) -> str:
    """Render a cell: scientific notation for extreme floats, else compact."""
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float):
        if value == 0.0:
            return "0"
        if value != value:  # NaN
            return "nan"
        if value == float("inf"):
            return "inf"
        magnitude = abs(value)
        if magnitude >= 1e5 or magnitude < 1e-3:
            return f"{value:.3g}"
        if magnitude >= 100:
            return f"{value:.1f}"
        return f"{value:.4g}"
    return str(value)


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render rows under headers with aligned, right-justified columns."""
    rendered: List[List[str]] = [[str(h) for h in headers]]
    for row in rows:
        if len(row) != len(headers):
            raise ValueError("row width does not match headers")
        rendered.append([format_value(cell) for cell in row])
    widths = [
        max(len(rendered[r][c]) for r in range(len(rendered)))
        for c in range(len(headers))
    ]
    lines = []
    for index, cells in enumerate(rendered):
        line = "  ".join(cell.rjust(width) for cell, width in zip(cells, widths))
        lines.append(line)
        if index == 0:
            lines.append("  ".join("-" * width for width in widths))
    return "\n".join(lines)


def ratio_note(measured: float, paper: float) -> str:
    """Human-readable agreement note: 'x1.2 of paper' style."""
    if paper == 0:
        return "paper=0"
    ratio = measured / paper
    return f"x{ratio:.2g} of paper"
