"""Experiment assembly: one function per paper table/figure, plus
fixed-width table rendering shared by the benchmark harnesses."""

from repro.analysis.tables import format_table, format_value
from repro.analysis import experiments

__all__ = ["format_table", "format_value", "experiments"]
