"""Report generation: snapshot every analytic exhibit to Markdown.

``python -m repro report`` (or :func:`write_report`) regenerates the
analytic tables and writes a single self-contained Markdown document --
the mechanism used to refresh the numbers quoted in EXPERIMENTS.md and
a convenient artefact for downstream users tracking their own changes.
The performance figures are optional (they take minutes; everything
else takes seconds).  The write is atomic (:mod:`repro.obs.atomicio`):
a report can take minutes to build, and a crash mid-write must not
leave a truncated document next to a valid manifest.
"""

from __future__ import annotations

import io
from typing import List, Optional, Sequence

from repro.analysis.experiments import all_experiments, fig8_performance, fig9_edp
from repro.analysis.tables import format_table
from repro.obs.atomicio import atomic_write_text


def render_exhibit_markdown(exhibit: dict) -> str:
    """One exhibit as a Markdown section (table in a code fence)."""
    buffer = io.StringIO()
    buffer.write(f"## {exhibit['title']}\n\n")
    buffer.write("```\n")
    buffer.write(format_table(exhibit["headers"], exhibit["rows"]))
    buffer.write("\n```\n")
    if exhibit.get("notes"):
        buffer.write(f"\n*{exhibit['notes']}*\n")
    return buffer.getvalue()


def build_report(
    include_performance: bool = False,
    performance_workloads: Optional[Sequence[str]] = None,
    accesses_per_core: int = 8000,
) -> str:
    """Assemble the full Markdown report."""
    sections: List[str] = [
        "# SuDoku reproduction -- regenerated exhibits\n",
        "Produced by `python -m repro report`. Each table shows this\n"
        "repository's models next to the paper's quoted values; see\n"
        "EXPERIMENTS.md for the discussion of every deviation.\n",
    ]
    for exhibit in all_experiments():
        sections.append(render_exhibit_markdown(exhibit))
    if include_performance:
        sections.append(
            render_exhibit_markdown(
                fig8_performance(
                    workloads=performance_workloads,
                    accesses_per_core=accesses_per_core,
                )
            )
        )
        sections.append(
            render_exhibit_markdown(
                fig9_edp(
                    workloads=performance_workloads,
                    accesses_per_core=accesses_per_core,
                )
            )
        )
    return "\n".join(sections)


def write_report(
    path: str,
    include_performance: bool = False,
    performance_workloads: Optional[Sequence[str]] = None,
    accesses_per_core: int = 8000,
) -> str:
    """Build the report and write it to ``path``; returns the text."""
    text = build_report(
        include_performance=include_performance,
        performance_workloads=performance_workloads,
        accesses_per_core=accesses_per_core,
    )
    atomic_write_text(path, text)
    return text
