"""Terminal charts: bars and log-scale ladders for exhibit output.

The evaluation environment has no plotting stack, so the figures render
as Unicode charts in the benchmark output and the generated report.
Two forms cover everything the paper plots:

* :func:`bar_chart` -- linear horizontal bars (Fig. 8/9 style, one bar
  per workload);
* :func:`log_ladder` -- positions values on a log10 axis (Fig. 7 style,
  where the series span thirty orders of magnitude).
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

#: Eighth-block characters for sub-cell bar resolution.
_BLOCKS = " ▏▎▍▌▋▊▉█"


def _bar(fraction: float, width: int) -> str:
    """A bar filling ``fraction`` of ``width`` character cells."""
    fraction = min(max(fraction, 0.0), 1.0)
    cells = fraction * width
    full = int(cells)
    remainder = int((cells - full) * 8)
    bar = "█" * full
    if remainder and full < width:
        bar += _BLOCKS[remainder]
    return bar.ljust(width)


def bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    width: int = 40,
    unit: str = "",
    baseline: float = 0.0,
) -> str:
    """Horizontal bar chart; negative values render leftward markers.

    :param baseline: value mapped to an empty bar (bars show
        ``value - baseline``).
    """
    if len(labels) != len(values):
        raise ValueError("labels and values must align")
    if not values:
        return "(empty chart)"
    magnitudes = [abs(value - baseline) for value in values]
    peak = max(magnitudes) or 1.0
    label_width = max(len(str(label)) for label in labels)
    lines = []
    for label, value, magnitude in zip(labels, values, magnitudes):
        bar = _bar(magnitude / peak, width)
        sign = "-" if value < baseline else " "
        lines.append(
            f"{str(label).rjust(label_width)} |{sign}{bar}| "
            f"{value:.4g}{unit}"
        )
    return "\n".join(lines)


def log_ladder(
    labels: Sequence[str],
    values: Sequence[float],
    width: int = 60,
    unit: str = "",
    bounds: Optional[Tuple[float, float]] = None,
) -> str:
    """Place values on a shared log10 axis (markers, not bars).

    Zeros and negatives are pinned to the left edge with a ``<`` marker.
    """
    if len(labels) != len(values):
        raise ValueError("labels and values must align")
    positives = [value for value in values if value > 0]
    if not positives:
        return "(no positive values)"
    if bounds is not None:
        low, high = bounds
    else:
        low, high = min(positives), max(positives)
    log_low = math.floor(math.log10(low))
    log_high = math.ceil(math.log10(high)) or log_low + 1
    if log_high == log_low:
        log_high += 1
    span = log_high - log_low
    label_width = max(len(str(label)) for label in labels)
    lines = []
    for label, value in zip(labels, values):
        axis = [" "] * (width + 1)
        if value > 0:
            position = (math.log10(value) - log_low) / span
            index = int(min(max(position, 0.0), 1.0) * width)
            axis[index] = "●"
            marker = "".join(axis)
        else:
            marker = "<" + " " * width
        lines.append(
            f"{str(label).rjust(label_width)} |{marker}| {value:.3g}{unit}"
        )
    footer = (
        f"{' ' * label_width} |10^{log_low}"
        f"{' ' * max(width - len(str(log_low)) - len(str(log_high)) - 6, 1)}"
        f"10^{log_high}|"
    )
    lines.append(footer)
    return "\n".join(lines)


def exhibit_chart(exhibit: dict, value_column: int, width: int = 40) -> str:
    """Bar chart of one numeric column of an exhibit dict."""
    rows = [row for row in exhibit["rows"] if isinstance(row[value_column], (int, float))]
    labels = [str(row[0]) for row in rows]
    values: List[float] = [float(row[value_column]) for row in rows]
    return bar_chart(labels, values, width=width)
