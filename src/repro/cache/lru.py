"""True-LRU replacement state for one cache set.

Kept as its own tiny module because both the functional cache and the
performance simulator's LLC need identical replacement behaviour -- the
Fig. 8 experiment compares two simulations of the *same* access stream
and any replacement divergence would contaminate the sub-percent
slowdowns being measured.
"""

from __future__ import annotations

from typing import List


class LRUState:
    """Recency order over ``ways`` slots; index 0 = most recently used."""

    def __init__(self, ways: int) -> None:
        if ways <= 0:
            raise ValueError("ways must be positive")
        self._order: List[int] = list(range(ways))

    def touch(self, way: int) -> None:
        """Mark a way as most recently used."""
        self._order.remove(way)
        self._order.insert(0, way)

    def victim(self) -> int:
        """The least recently used way (replacement candidate)."""
        return self._order[-1]

    def order(self) -> List[int]:
        """Copy of the recency order, MRU first."""
        return list(self._order)
