"""Functional set-associative cache.

This is the *behavioural* LLC: it tracks which line addresses are
resident, in which physical frame, with LRU replacement and dirty bits.
The SuDoku controller sits underneath it (protecting physical frames);
the performance simulator reuses the same lookup logic for timing.

The data payloads themselves live in an :class:`repro.sttram.array.STTRAMArray`
indexed by physical frame, which is what the fault injectors corrupt; the
functional cache only decides *which* frame an address occupies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.cache.geometry import CacheGeometry
from repro.cache.lru import LRUState


@dataclass(frozen=True)
class AccessResult:
    """Outcome of one cache access.

    :param hit: whether the line was resident.
    :param frame_index: physical frame serving the line after the access.
    :param victim_line_address: line address evicted to make room (misses
        only; ``None`` when the frame was empty or on hits).
    :param victim_dirty: whether the evicted line needed a writeback.
    """

    hit: bool
    frame_index: int
    victim_line_address: Optional[int] = None
    victim_dirty: bool = False


@dataclass
class _Frame:
    """Residency state of one physical frame."""

    line_address: Optional[int] = None
    dirty: bool = False


class FunctionalCache:
    """Set-associative, write-back, write-allocate cache model."""

    def __init__(self, geometry: CacheGeometry) -> None:
        self.geometry = geometry
        # One _Frame object per line IS the model's state -- allocation,
        # not a scan over array storage; nothing to vectorize.
        # repro-lint: disable=RPR009
        self._frames: List[_Frame] = [_Frame() for _ in range(geometry.num_lines)]
        self._lru: List[LRUState] = [
            LRUState(geometry.ways) for _ in range(geometry.num_sets)
        ]
        # line_address -> frame index, for O(1) lookup.
        self._where: Dict[int, int] = {}
        self.hits = 0
        self.misses = 0
        self.writebacks = 0

    # -- queries -----------------------------------------------------------------

    def probe(self, address: int) -> Optional[int]:
        """Frame index holding this address, or None. Does not touch LRU."""
        line_address = self.geometry.line_address(address)
        return self._where.get(line_address)

    def resident_lines(self) -> int:
        """Number of frames currently holding a line."""
        return len(self._where)

    def frame_state(self, frame_index: int) -> tuple:
        """(line_address, dirty) of a frame; line_address None if empty."""
        frame = self._frames[frame_index]
        return frame.line_address, frame.dirty

    # -- accesses -----------------------------------------------------------------

    def access(self, address: int, is_write: bool) -> AccessResult:
        """Perform a read or write access, allocating on miss."""
        geometry = self.geometry
        line_address = geometry.line_address(address)
        set_index = line_address & (geometry.num_sets - 1)
        frame_index = self._where.get(line_address)

        if frame_index is not None:
            way = frame_index - set_index * geometry.ways
            self._lru[set_index].touch(way)
            if is_write:
                self._frames[frame_index].dirty = True
            self.hits += 1
            return AccessResult(hit=True, frame_index=frame_index)

        self.misses += 1
        victim_way = self._find_way(set_index)
        frame_index = geometry.frame_index(set_index, victim_way)
        frame = self._frames[frame_index]
        victim_line_address = frame.line_address
        victim_dirty = frame.dirty
        if victim_line_address is not None:
            del self._where[victim_line_address]
            if victim_dirty:
                self.writebacks += 1

        frame.line_address = line_address
        frame.dirty = is_write
        self._where[line_address] = frame_index
        self._lru[set_index].touch(victim_way)
        return AccessResult(
            hit=False,
            frame_index=frame_index,
            victim_line_address=victim_line_address,
            victim_dirty=victim_dirty,
        )

    def invalidate(self, address: int) -> bool:
        """Drop a line if resident; returns whether it was."""
        line_address = self.geometry.line_address(address)
        frame_index = self._where.pop(line_address, None)
        if frame_index is None:
            return False
        frame = self._frames[frame_index]
        frame.line_address = None
        frame.dirty = False
        return True

    def _find_way(self, set_index: int) -> int:
        """Pick the way to fill: first empty way, else true-LRU victim."""
        base = set_index * self.geometry.ways
        for way in range(self.geometry.ways):
            if self._frames[base + way].line_address is None:
                return way
        return self._lru[set_index].victim()

    # -- statistics -----------------------------------------------------------------

    @property
    def accesses(self) -> int:
        """Total accesses observed."""
        return self.hits + self.misses

    def miss_rate(self) -> float:
        """Miss ratio over all accesses so far (0 when idle)."""
        return self.misses / self.accesses if self.accesses else 0.0

    def walk_frames(self, visit: Callable[[int, Optional[int], bool], None]) -> None:
        """Visit every frame as (frame_index, line_address, dirty).

        Used by the scrub engine's residency-aware variants and by tests
        asserting the residency map is consistent.
        """
        for frame_index, frame in enumerate(self._frames):
            visit(frame_index, frame.line_address, frame.dirty)
