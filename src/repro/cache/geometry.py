"""Cache geometry and address arithmetic.

The paper's LLC is 64 MB, 8-way, with 64-byte lines (Table VI): 2^20
lines in 2^17 sets.  :class:`CacheGeometry` centralises every derived
quantity (set/tag split, RAID-group counts for a given group size) so the
SuDoku engines, the reliability models, and the performance simulator all
agree on the shapes involved.
"""

from __future__ import annotations

from dataclasses import dataclass


def _is_power_of_two(value: int) -> bool:
    return value > 0 and (value & (value - 1)) == 0


@dataclass(frozen=True)
class AddressParts:
    """Decomposition of a byte address for a given geometry."""

    tag: int
    set_index: int
    block_offset: int


@dataclass(frozen=True)
class CacheGeometry:
    """Geometry of a set-associative cache.

    :param capacity_bytes: total data capacity (64 MB default).
    :param line_bytes: line (block) size (64 B default).
    :param ways: associativity (8 default).
    """

    capacity_bytes: int = 64 * 1024 * 1024
    line_bytes: int = 64
    ways: int = 8

    def __post_init__(self) -> None:
        if not _is_power_of_two(self.capacity_bytes):
            raise ValueError("capacity must be a power of two")
        if not _is_power_of_two(self.line_bytes):
            raise ValueError("line size must be a power of two")
        if not _is_power_of_two(self.ways):
            raise ValueError("associativity must be a power of two")
        if self.capacity_bytes % (self.line_bytes * self.ways):
            raise ValueError("capacity must divide into sets evenly")
        if self.num_sets < 1:
            raise ValueError("geometry has no sets")

    # -- derived quantities ----------------------------------------------------

    @property
    def num_lines(self) -> int:
        """Total number of lines (2^20 for the default geometry)."""
        return self.capacity_bytes // self.line_bytes

    @property
    def num_sets(self) -> int:
        """Number of sets."""
        return self.num_lines // self.ways

    @property
    def line_bits(self) -> int:
        """Data bits per line (512 for 64-byte lines)."""
        return self.line_bytes * 8

    @property
    def offset_bits(self) -> int:
        """Bits of byte-offset within a line."""
        return self.line_bytes.bit_length() - 1

    @property
    def set_bits(self) -> int:
        """Bits of set index."""
        return self.num_sets.bit_length() - 1

    def num_groups(self, group_size_lines: int) -> int:
        """RAID-groups of the given size covering the whole cache."""
        if group_size_lines <= 0:
            raise ValueError("group size must be positive")
        if self.num_lines % group_size_lines:
            raise ValueError(
                f"{group_size_lines}-line groups do not tile {self.num_lines} lines"
            )
        return self.num_lines // group_size_lines

    # -- address codecs ----------------------------------------------------------

    def split(self, address: int) -> AddressParts:
        """Split a byte address into tag / set / offset."""
        if address < 0:
            raise ValueError("address must be non-negative")
        block_offset = address & (self.line_bytes - 1)
        line_address = address >> self.offset_bits
        set_index = line_address & (self.num_sets - 1)
        tag = line_address >> self.set_bits
        return AddressParts(tag=tag, set_index=set_index, block_offset=block_offset)

    def line_address(self, address: int) -> int:
        """The line-granular address (byte address / line size)."""
        if address < 0:
            raise ValueError("address must be non-negative")
        return address >> self.offset_bits

    def frame_index(self, set_index: int, way: int) -> int:
        """Flat physical index of a (set, way) frame in [0, num_lines).

        This is the "cache line address" the paper's RAID-group hashes are
        computed from: group membership is a property of the physical
        frame, not of the resident tag.
        """
        if not 0 <= set_index < self.num_sets:
            raise ValueError("set index out of range")
        if not 0 <= way < self.ways:
            raise ValueError("way out of range")
        return set_index * self.ways + way

    def frame_location(self, frame_index: int) -> tuple:
        """Inverse of :meth:`frame_index`: (set_index, way)."""
        if not 0 <= frame_index < self.num_lines:
            raise ValueError("frame index out of range")
        return divmod(frame_index, self.ways)

    def describe(self) -> str:
        """Human-readable one-liner for logs and reports."""
        mb = self.capacity_bytes / (1024 * 1024)
        return (
            f"{mb:g}MB, {self.ways}-way, {self.line_bytes}B lines, "
            f"{self.num_sets} sets, {self.num_lines} lines"
        )
