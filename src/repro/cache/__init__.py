"""Last-level-cache substrate.

A functional model of the shared STTRAM LLC the paper evaluates: address
geometry, set-associative lookup with LRU replacement, and the line-state
bookkeeping the SuDoku controller and the performance simulator share.

* :mod:`repro.cache.geometry` -- cache geometry and address codecs.
* :mod:`repro.cache.lru` -- true-LRU replacement state.
* :mod:`repro.cache.functional` -- the functional set-associative cache.
"""

from repro.cache.geometry import AddressParts, CacheGeometry
from repro.cache.lru import LRUState
from repro.cache.functional import AccessResult, FunctionalCache

__all__ = [
    "AddressParts",
    "CacheGeometry",
    "LRUState",
    "AccessResult",
    "FunctionalCache",
]
