"""Section VII-I: write traffic to the Parity Line Tables.

Every cache write must update both PLTs (one read-modify-write each).
The PLT is 512x smaller than the cache yet sees the same write
intensity; the paper's answer is to bank the (fast SRAM) PLT like the
cache so it never bottlenecks.  This bench measures the traffic ratio on
a real workload-driven engine and the implied per-bank PLT demand.
"""

import random

import pytest

from conftest import emit
from repro.core.engine import SuDokuZ
from repro.core.linecodec import LineCodec
from repro.perf.trace import SyntheticTrace
from repro.perf.workloads import WORKLOADS
from repro.sttram.array import STTRAMArray

GROUP = 32
NUM_LINES = GROUP * GROUP


def drive(workload: str, accesses: int = 4000) -> dict:
    codec = LineCodec()
    array = STTRAMArray(NUM_LINES, codec.stored_bits)
    engine = SuDokuZ(array, group_size=GROUP, codec=codec)
    rng = random.Random(13)
    writes = 0
    for access in SyntheticTrace(WORKLOADS[workload], 0, accesses, seed=13):
        frame = access.line_address % NUM_LINES
        if access.is_write:
            engine.write_data(frame, rng.getrandbits(512))
            writes += 1
        else:
            engine.read_data(frame)
    return {
        "writes": writes,
        "plt1_updates": engine.plt.write_updates,
        "plt2_updates": engine.plt2.write_updates,
    }


def test_bench_plt_write_traffic(benchmark):
    def run_all():
        return {name: drive(name) for name in ("lbm", "comm1", "povray")}

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    sram_service_ns = 1.0   # banked SRAM PLT write
    sttram_write_ns = 18.0
    rows = []
    for name, counts in results.items():
        ratio = (
            (counts["plt1_updates"] + counts["plt2_updates"]) / counts["writes"]
            if counts["writes"]
            else 0.0
        )
        rows.append(
            [
                name,
                counts["writes"],
                counts["plt1_updates"] + counts["plt2_updates"],
                ratio,
                sram_service_ns * ratio / sttram_write_ns,
            ]
        )
    emit(
        {
            "title": "Section VII-I: PLT write traffic",
            "headers": [
                "workload", "cache writes", "PLT updates",
                "PLT updates/write", "PLT busy vs STTRAM busy",
            ],
            "rows": rows,
            "notes": "Two updates per write by construction; SRAM service "
                     "is ~18x faster than the STTRAM write it shadows, so "
                     "an equally-banked PLT is never the bottleneck.",
        }
    )
    for row in rows:
        assert row[3] == pytest.approx(2.0)   # exactly two PLTs
        assert row[4] < 0.5                   # far from saturating
