"""Section VII-B: correction latency accounting, analytical and measured.

The analytical rows come from the latency model; the measured rows time
the *actual* Python correction engines (the wall-clock numbers are
simulator costs, not hardware latencies -- the hardware-time accounting
is the analytical half)."""

import random

import pytest

from conftest import emit
from repro.analysis.experiments import latency_summary
from repro.coding.bitvec import random_error_vector
from repro.core.engine import SuDokuZ
from repro.core.linecodec import LineCodec
from repro.sttram.array import STTRAMArray


def test_bench_latency_model(benchmark):
    exhibit = benchmark(latency_summary)
    emit(exhibit)
    rows = {row[0]: row[1] for row in exhibit["rows"]}
    assert rows["RAID-4 repair (us)"] == pytest.approx(4.6, rel=0.1)
    assert rows["SDR repair (us)"] > rows["RAID-4 repair (us)"] - 0.1
    assert rows["SuDoku-Z repair (us)"] > rows["SDR repair (us)"]


@pytest.fixture(scope="module")
def engine():
    rng = random.Random(5)
    codec = LineCodec()
    array = STTRAMArray(1024, codec.stored_bits)
    built = SuDokuZ(array, group_size=32, codec=codec)
    for frame in range(1024):
        built.write_data(frame, rng.getrandbits(512))
    return rng, array, built


def test_bench_ecc1_repair_throughput(benchmark, engine):
    rng, array, built = engine

    def repair_one():
        array.inject(7, 1 << 99)
        built.read_data(7)

    benchmark(repair_one)
    assert array.is_clean(7)


def test_bench_raid4_repair_throughput(benchmark, engine):
    rng, array, built = engine

    def repair_one():
        array.inject(9, random_error_vector(array.line_bits, 4, rng))
        built.read_data(9)

    benchmark(repair_one)
    assert array.is_clean(9)


def test_bench_sdr_repair_throughput(benchmark, engine):
    rng, array, built = engine

    def repair_pair():
        array.inject(11, random_error_vector(array.line_bits, 2, rng))
        array.inject(12, random_error_vector(array.line_bits, 2, rng))
        built.scrub_frames([11, 12])

    benchmark(repair_pair)
    assert array.is_clean(11) and array.is_clean(12)
