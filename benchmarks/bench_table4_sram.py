"""Table IV: SRAM low-voltage (persistent-fault) study."""

import pytest

from conftest import emit
from repro.analysis.experiments import table4_sram
from repro.core.config import PAPER


def test_bench_table4_sram(benchmark):
    exhibit = benchmark(table4_sram)
    emit(exhibit)
    rows = {str(row[0]): row[1] for row in exhibit["rows"]}
    # ECC ladder reproduced (within band) and monotone.
    assert rows["ECC-7"] == pytest.approx(PAPER.sram_cache_fail_ecc7, rel=0.7)
    assert rows["ECC-7"] > rows["ECC-8"] > rows["ECC-9"]
    # The qualitative SuDoku claim: with a fault-rate-appropriate group
    # size it beats even ECC-9.
    assert rows["SuDoku (G=8)"] < rows["ECC-9"]
