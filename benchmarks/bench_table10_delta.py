"""Table X: impact of thermal stability (delta = 35 / 34 / 33)."""

from conftest import emit
from repro.analysis.experiments import table10_delta


def test_bench_table10_delta(benchmark):
    exhibit = benchmark(table10_delta)
    emit(exhibit)
    rows = exhibit["rows"]
    strengths = [row[6] for row in rows]
    ecc6_fits = [row[2] for row in rows]
    sudoku_fits = [row[4] for row in rows]
    # Lower delta -> higher BER -> higher FIT for both schemes.
    assert ecc6_fits == sorted(ecc6_fits)
    assert sudoku_fits == sorted(sudoku_fits)
    # SuDoku stays stronger than ECC-6 at every delta (the table's claim),
    # with the advantage shrinking as delta falls -- the paper's trend.
    assert all(s > 1.0 for s in strengths)
    assert strengths[0] > strengths[1] > strengths[2]
