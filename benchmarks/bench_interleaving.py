"""Extension: bit interleaving vs burst (disturb-class) faults.

A physical burst of length <= the interleave depth lands at most one
bit in any logical line, converting RAID-class multi-bit faults into
one-cycle ECC-1 fixes.  This bench injects physical bursts through the
interleaver into a SuDoku-Z array at several depths and reports which
correction mechanism carried the load.
"""

import random

import pytest

from conftest import emit
from repro.coding.interleave import BitInterleaver
from repro.core.engine import SuDokuZ
from repro.core.linecodec import LineCodec
from repro.sttram.array import STTRAMArray

GROUP = 16
NUM_LINES = 256
BURSTS = 150
BURST_LENGTH = 4


def run_depth(depth: int, seed: int = 23) -> dict:
    codec = LineCodec()
    array = STTRAMArray(NUM_LINES, codec.stored_bits)
    engine = SuDokuZ(array, group_size=GROUP, codec=codec)
    rng = random.Random(seed)
    for frame in range(NUM_LINES):
        engine.write_data(frame, rng.getrandbits(512))
    interleaver = BitInterleaver(codec.stored_bits, depth)

    lost = 0
    for _ in range(BURSTS):
        # A physical burst strikes a random row of `depth` adjacent lines.
        base = rng.randrange(0, NUM_LINES - depth + 1)
        start = rng.randrange(0, interleaver.row_bits - BURST_LENGTH + 1)
        for offset, vector in interleaver.burst_to_line_errors(start, BURST_LENGTH):
            array.inject(base + offset, vector)
        counts = engine.scrub_frames(range(base, base + depth))
        if counts.get("due", 0) or counts.get("sdc", 0):
            lost += 1
            for frame in array.faulty_lines():
                array.restore(frame, array.golden(frame))
            engine.initialize_parities()
    stats = engine.stats
    return {
        "lost": lost,
        "ecc1": stats.count_label("corrected_ecc1"),
        "raid4": stats.count_label("corrected_raid4"),
        "sdr": stats.count_label("corrected_sdr")
        + stats.count_label("corrected_hash2"),
    }


def test_bench_interleaving_depths(benchmark):
    def sweep():
        return {depth: run_depth(depth) for depth in (1, 2, 4, 8)}

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(
        {
            "title": "Extension: interleave depth vs 4-bit physical bursts",
            "headers": [
                "depth", f"lost rows / {BURSTS}", "ECC-1 fixes",
                "RAID-4 fixes", "SDR/hash-2 fixes",
            ],
            "rows": [
                [depth, r["lost"], r["ecc1"], r["raid4"], r["sdr"]]
                for depth, r in sorted(results.items())
            ],
            "notes": "At depth >= burst length every fault is a single-bit "
                     "ECC-1 fix; shallow interleaving leaves multi-bit "
                     "lines for the RAID machinery.",
        }
    )
    # Depth >= burst length: everything is a one-cycle local fix.
    assert results[4]["raid4"] + results[4]["sdr"] == 0
    assert results[8]["raid4"] + results[8]["sdr"] == 0
    assert results[4]["lost"] == 0
    # Un-interleaved storage leans on the group machinery instead.
    assert results[1]["raid4"] + results[1]["sdr"] > 0
    # ECC-1 work grows with depth (bursts split into more lines).
    assert results[4]["ecc1"] > results[1]["ecc1"]
