"""Table XII: SuDoku vs Hi-ECC (ECC-6 at 1 KB granularity)."""

from conftest import emit
from repro.analysis.experiments import table12_hiecc


def test_bench_table12_hiecc(benchmark):
    exhibit = benchmark(table12_hiecc)
    emit(exhibit)
    fits = {row[0]: row[1] for row in exhibit["rows"]}
    # The table's claim: Hi-ECC misses the 1-FIT target, SuDoku beats it
    # by orders of magnitude.
    assert fits["Hi-ECC"] > 0.1
    assert fits["SuDoku"] < 1e-3
    assert fits["Hi-ECC"] / fits["SuDoku"] > 1e3
