"""Fig. 7 and section headlines: SuDoku-X / -Y / -Z vs ECC-6 reliability,
including the failure-probability-vs-time series the figure plots."""

import pytest

from conftest import emit
from repro.analysis.experiments import fig7_reliability
from repro.core.config import PAPER
from repro.reliability.eccmodel import ECCCacheModel
from repro.reliability.sudokumodel import SuDokuReliabilityModel


def test_bench_fig7_headlines(benchmark):
    exhibit = benchmark(fig7_reliability)
    rows = {row[0]: row[1] for row in exhibit["rows"]}
    # FIT is the headline reliability number: track it as a trajectory
    # scalar so a model regression shows up in `repro bench --compare`.
    exhibit["scalars"] = {
        "fit_z": rows["SuDoku-Z FIT"],
        "fit_z_no_sdr": rows["SuDoku-Z (no SDR) FIT"],
    }
    emit(exhibit)
    assert rows["SuDoku-X MTTF (s)"] == pytest.approx(PAPER.sudoku_x_mttf_s, rel=0.25)
    assert rows["SuDoku-Z strength vs ECC-6"] > PAPER.sudoku_z_vs_ecc6
    assert rows["SuDoku-Z (no SDR) FIT"] == pytest.approx(
        PAPER.sudoku_z_alone_fit, rel=0.25
    )


def test_bench_fig7_failure_curves(benchmark):
    """The actual figure: P(cache failure) vs time for each design."""

    def curves():
        model = SuDokuReliabilityModel(ber=5.3e-6)
        ecc6 = ECCCacheModel(t=6, ber=5.3e-6)
        times = [1.0, 10.0, 60.0, 3600.0, 86400.0]
        rows = []
        for time_s in times:
            intervals = int(time_s / 0.020)
            from repro.reliability.binomial import complement_power

            rows.append(
                [
                    f"{time_s:g}s",
                    model.failure_probability_by("X", time_s),
                    model.failure_probability_by("Y", time_s),
                    model.failure_probability_by("Z", time_s),
                    complement_power(ecc6.cache_failure_probability(), intervals),
                ]
            )
        return rows

    rows = benchmark(curves)
    from repro.analysis.charts import log_ladder
    from repro.reliability.eccmodel import ECCCacheModel as _ECC
    from repro.reliability.sudokumodel import SuDokuReliabilityModel as _Model

    model = _Model(ber=5.3e-6)
    print("\nFIT ladder (log scale; lower is better):")
    print(
        log_ladder(
            ["SuDoku-X", "SuDoku-Y", "ECC-6", "SuDoku-Z"],
            [
                model.fit_x(),
                model.fit_y(),
                _ECC(t=6, ber=5.3e-6).fit(),
                model.fit_z(),
            ],
            unit=" FIT",
        )
    )
    emit(
        {
            "title": "Fig. 7 (series): cache failure probability vs time",
            "headers": ["time", "SuDoku-X", "SuDoku-Y", "SuDoku-Z", "ECC-6"],
            "rows": rows,
            "notes": "X saturates in seconds, Y in days, Z/ECC-6 essentially never;"
                     " Z sits below ECC-6 at every horizon.",
        }
    )
    # Ordering invariant at every time point: X >= Y >= ECC-6 >= Z.
    for row in rows:
        _, x, y, z, ecc6 = row
        assert x >= y >= z
        assert ecc6 >= z
