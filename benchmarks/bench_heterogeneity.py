"""Extension: static weak-cell populations vs the iid fault model.

Process variation is static -- each cell draws its Delta once -- so real
fault activity concentrates in a fixed weak-cell population instead of
raining uniformly.  At the *same average BER*, concentration strictly
increases the rate of multi-bit lines (two weak cells sharing a line
co-fire far more often than random pairing), which is precisely the
event class that drives SuDoku's group machinery.

This bench runs matched campaigns (same average BER, same engine) under
both models and reports fault concentration, multi-bit-line activity,
group-mechanism invocations, and survival.
"""

import numpy as np
import pytest

from conftest import emit
from repro.coding.bitvec import popcount
from repro.core.engine import SuDokuZ
from repro.core.linecodec import LineCodec
from repro.reliability.montecarlo import heal
from repro.sttram.array import STTRAMArray
from repro.sttram.faults import TransientFaultInjector
from repro.sttram.weakcells import HeterogeneousFaultInjector, WeakCellMap

GROUP = 32
NUM_LINES = GROUP * GROUP
INTERVALS = 150
#: Accelerated device point: low delta, paper's 10% sigma.
DELTA, SIGMA = 31.0, 3.1


def campaign(injector_kind: str, seed: int = 41) -> dict:
    rng = np.random.default_rng(seed)
    codec = LineCodec()
    array = STTRAMArray(NUM_LINES, codec.stored_bits)
    engine = SuDokuZ(array, group_size=GROUP, codec=codec)

    weak_map = WeakCellMap(
        NUM_LINES, codec.stored_bits, delta_mean=DELTA, delta_sigma=SIGMA,
        rng=np.random.default_rng(seed + 1),
    )
    if injector_kind == "heterogeneous":
        vectors_for = HeterogeneousFaultInjector(weak_map, rng).error_vectors
    else:
        uniform = TransientFaultInjector(codec.stored_bits, weak_map.total_ber, rng)
        vectors_for = uniform.error_vectors

    failures = 0
    multi_events = 0
    flips = 0
    for _ in range(INTERVALS):
        vectors = vectors_for(NUM_LINES)
        for frame, vector in vectors.items():
            array.inject(frame, vector)
            fault_bits = popcount(vector)
            flips += fault_bits
            if fault_bits >= 2:
                multi_events += 1
        counts = engine.scrub_frames(sorted(vectors))
        if counts.get("due", 0) or counts.get("sdc", 0):
            failures += 1
            heal(array)
            engine.initialize_parities()
    return {
        "failures": failures,
        "multi_events": multi_events,
        "flips": flips,
        "group_mechanism": engine.stats.raid4_invocations
        + engine.stats.sdr_invocations
        + engine.stats.hash2_invocations,
        "sdc": engine.stats.count_label("sdc"),
    }


def test_bench_heterogeneity(benchmark):
    def run_both():
        return {
            "iid (paper model)": campaign("iid"),
            "static weak cells": campaign("heterogeneous"),
        }

    results = benchmark.pedantic(run_both, rounds=1, iterations=1)
    emit(
        {
            "title": "Extension: iid fault model vs static weak-cell population",
            "headers": [
                "model", "total flips", "multi-bit line events",
                "group-mechanism invocations", f"failed/{INTERVALS}", "SDC",
            ],
            "rows": [
                [name, r["flips"], r["multi_events"], r["group_mechanism"],
                 r["failures"], r["sdc"]]
                for name, r in results.items()
            ],
            "notes": f"delta {DELTA}, sigma 10%, matched average BER, "
                     f"{NUM_LINES} lines. At identical fault volume the "
                     "static population yields more multi-bit lines (weak "
                     "cells sharing a line co-fire repeatedly); SuDoku-Z "
                     "absorbs the extra group-level work without loss.",
        }
    )
    iid = results["iid (paper model)"]
    het = results["static weak cells"]
    # Matched volume (within sampling noise)...
    assert het["flips"] == pytest.approx(iid["flips"], rel=0.5)
    # ...but concentrated models produce more multi-bit lines.
    assert het["multi_events"] > iid["multi_events"]
    # Soundness holds under both fault processes.
    assert het["sdc"] == 0 and iid["sdc"] == 0
