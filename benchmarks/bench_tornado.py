"""Extension: tornado sensitivity of SuDoku-Z FIT around the paper point.

Unifies the paper's one-axis-at-a-time sweeps (Tables VIII, IX, X) into
a ranked exposure analysis: how many orders of magnitude each parameter
swings the FIT when perturbed around the nominal design.
"""

from conftest import emit
from repro.analysis.charts import bar_chart
from repro.reliability.sensitivity import tornado


def test_bench_tornado(benchmark):
    entries = benchmark.pedantic(tornado, rounds=1, iterations=1)
    emit(
        {
            "title": "Extension: FIT sensitivity tornado (SuDoku-Z, nominal point)",
            "headers": [
                "parameter", "low", "FIT(low)", "high", "FIT(high)",
                "swing (orders)",
            ],
            "rows": [
                [
                    entry.parameter, entry.low_label, entry.fit_low,
                    entry.high_label, entry.fit_high, entry.swing_orders,
                ]
                for entry in entries
            ],
            "notes": "Device physics (sigma, then delta) dwarfs every "
                     "architectural knob; scrub interval is the strongest "
                     "runtime actuator -- the lever the adaptive controller "
                     "(examples/adaptive_scrub.py) pulls.",
        }
    )
    print("\nswing per parameter (orders of magnitude):")
    print(
        bar_chart(
            [entry.parameter for entry in entries],
            [entry.swing_orders for entry in entries],
            unit=" orders",
        )
    )
    swings = {entry.parameter: entry.swing_orders for entry in entries}
    assert swings["process variation (sigma)"] > swings["scrub interval"]
    assert swings["scrub interval"] > swings["cache size"]
    # Every architectural knob stays within +-2.5 orders -- the design is
    # robust to everything except the device itself.
    for parameter, swing in swings.items():
        if parameter not in ("process variation (sigma)", "thermal stability (delta)", "scrub interval"):
            assert swing < 2.5, parameter
