"""Table I: thermal stability vs bit error rate over a 20 ms interval."""

import pytest

from conftest import emit
from repro.analysis.experiments import table1_ber


def test_bench_table1_ber(benchmark):
    exhibit = benchmark(table1_ber)
    emit(exhibit)
    delta35 = exhibit["rows"][1]
    assert delta35[1] == pytest.approx(delta35[2], rel=0.10)
