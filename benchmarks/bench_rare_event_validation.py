"""Conditional rare-event validation: deeper-BER model checks.

Naive whole-cache campaigns stop being informative once failures take
thousands of intervals; conditioning on "the group holds >= 2 multi-bit
lines" buys orders of magnitude of variance reduction and lets the
SuDoku-Y model be checked across a BER sweep approaching the paper's
regime.  (The Z mode simulates one peeling level and is an upper bound;
see EXPERIMENTS.md.)
"""

import pytest

from conftest import emit
from repro.reliability.raresim import estimate_fit
from repro.reliability.sudokumodel import SuDokuReliabilityModel

GROUP = 32
NUM_GROUPS = 2048


def test_bench_conditional_y_sweep(benchmark):
    def sweep():
        rows = []
        for ber, trials in ((6e-4, 800), (3e-4, 800), (1.5e-4, 800)):
            result = estimate_fit(
                "Y", ber, trials=trials, group_size=GROUP,
                num_groups=NUM_GROUPS, seed=11,
            )
            model = SuDokuReliabilityModel(
                ber=ber, group_size=GROUP, num_lines=GROUP * NUM_GROUPS
            )
            conditional_model = (
                model.group_fail_y() / result.conditioning_probability
            )
            low, high = result.conditional_ci()
            rows.append(
                [
                    ber,
                    result.conditioning_probability,
                    result.conditional_failure_probability,
                    f"[{low:.4f},{high:.4f}]",
                    conditional_model,
                    result.fit(),
                ]
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(
        {
            "title": "Rare-event validation: SuDoku-Y conditional failure vs model",
            "headers": [
                "BER", "P(conditioning)", "MC conditional fail",
                "95% CI", "model conditional", "implied cache FIT",
            ],
            "rows": rows,
            "notes": "Conditioning multiplies effective sample size by "
                     "1/P(conditioning): 30-3000x over naive campaigns.",
        }
    )
    for row in rows:
        predicted = row[4]
        low, high = (float(v) for v in row[3].strip("[]").split(","))
        # The closed form is a mildly conservative approximation of the
        # machinery: it must sit within a 4x band of the measured CI at
        # every BER (at the deepest point the CI is wide -- exactly why
        # this exhibit reports intervals, not point ratios).
        assert low / 4 <= predicted <= high * 4, (
            f"model {predicted} outside CI band [{low}, {high}] at BER {row[0]}"
        )


def test_bench_conditional_z_bound(benchmark):
    result = benchmark.pedantic(
        estimate_fit,
        kwargs=dict(level="Z", ber=8e-4, trials=400, group_size=GROUP,
                    num_groups=NUM_GROUPS, seed=12),
        rounds=1,
        iterations=1,
    )
    model = SuDokuReliabilityModel(
        ber=8e-4, group_size=GROUP, num_lines=GROUP * NUM_GROUPS
    )
    emit(
        {
            "title": "Rare-event validation: SuDoku-Z one-level peeling bound",
            "headers": ["quantity", "value"],
            "rows": [
                ["MC conditional fail (upper bound)", result.conditional_failure_probability],
                ["implied group failure", result.group_failure_probability],
                ["analytical group failure", model.group_fail_z()],
            ],
            "notes": "One peeling level truncates the recovery the full "
                     "engine performs, so the MC value upper-bounds the "
                     "true rate at this (accelerated) BER.",
        }
    )
    assert result.conditional_failure_probability < 0.5
