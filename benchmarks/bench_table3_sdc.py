"""Table III: silent-data-corruption rates of SuDoku-X."""

from conftest import emit
from repro.analysis.experiments import table3_sdc


def test_bench_table3_sdc(benchmark):
    exhibit = benchmark(table3_sdc)
    emit(exhibit)
    rows = {row[0]: row[1] for row in exhibit["rows"]}
    # SDC stays many orders of magnitude below the 1-FIT target (the
    # conclusion the table exists to support).
    assert rows["SDC FIT (total)"] < 1e-6
    # The misdetection factor is the paper's 2^-31 exactly.
    assert rows["CRC-31 misdetection"] == 2.0 ** -31
