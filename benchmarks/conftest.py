"""Shared helpers for the benchmark harness.

Every benchmark regenerates one paper exhibit (table or figure), times
the regeneration with pytest-benchmark, prints the exhibit, and persists
it under ``benchmarks/results/`` so the numbers survive output capture.
Run with::

    pytest benchmarks/ --benchmark-only            # timings + results files
    pytest benchmarks/ --benchmark-only -s         # exhibits on stdout too
"""

from __future__ import annotations

import pathlib
import re

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def emit(exhibit: dict) -> str:
    """Render an exhibit, print it, and persist it to results/."""
    from repro.analysis.tables import format_table

    lines = [exhibit["title"], ""]
    lines.append(format_table(exhibit["headers"], exhibit["rows"]))
    if exhibit.get("notes"):
        lines += ["", f"notes: {exhibit['notes']}"]
    text = "\n".join(lines)
    print("\n" + text)

    RESULTS_DIR.mkdir(exist_ok=True)
    slug = re.sub(r"[^a-z0-9]+", "_", exhibit["title"].lower()).strip("_")[:60]
    (RESULTS_DIR / f"{slug}.txt").write_text(text + "\n")
    return text
