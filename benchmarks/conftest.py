"""Shared helpers for the benchmark harness.

Every benchmark regenerates one paper exhibit (table or figure), times
the regeneration, prints the exhibit, and persists two artifacts:

* the human-readable table under ``benchmarks/results/`` (written
  atomically, keyed by the stable bench id so two long titles can never
  collide on a truncated slug);
* one schema-versioned :class:`repro.bench.BenchRecord` appended to the
  trajectory store (``benchmarks/trajectory/`` or ``$REPRO_BENCH_STORE``)
  carrying wall-clock timing, git SHA, machine fingerprint, and any
  ``scalars`` the exhibit wants tracked over time (FIT, speedup,
  overhead).  ``python -m repro bench`` drives the suite through this
  hook and gates the records against ``benchmarks/baseline.json``.

Run directly with::

    pytest benchmarks/ --benchmark-only            # timings + results files
    pytest benchmarks/ --benchmark-only -s         # exhibits on stdout too

or through the trajectory-aware driver::

    PYTHONPATH=src python -m repro bench --compare

``pytest-benchmark`` is optional: when the plugin is missing, the
``benchmark`` fixture below stands in (one plain call, no statistics)
so the suite still runs -- the trajectory wall clock is the timing
source of record either way.
"""

from __future__ import annotations

import pathlib
import time

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: Per-test state for the trajectory record: the running test's nodeid
#: and its setup-time monotonic clock, so ``emit()`` can stamp each
#: record with a wall-clock duration without threading a timer through
#: every benchmark body.
_CURRENT = {"nodeid": "", "started_s": 0.0}


def pytest_runtest_setup(item) -> None:
    _CURRENT["nodeid"] = item.nodeid
    _CURRENT["started_s"] = time.perf_counter()


def _store_root() -> str:
    import os

    from repro.bench.store import STORE_ENV

    return os.environ.get(STORE_ENV, "") or str(
        pathlib.Path(__file__).parent / "trajectory"
    )


def emit(exhibit: dict) -> str:
    """Render an exhibit, print it, persist it, record its trajectory.

    The optional ``scalars`` key of the exhibit (name -> number) rides
    into the trajectory record as first-class series for the baseline
    comparator and the trend dashboard.
    """
    from repro.analysis.tables import format_table
    from repro.bench.record import record_from_exhibit, stable_bench_id
    from repro.bench.store import TrajectoryStore
    from repro.obs.atomicio import atomic_write_text

    lines = [exhibit["title"], ""]
    lines.append(format_table(exhibit["headers"], exhibit["rows"]))
    if exhibit.get("notes"):
        lines += ["", f"notes: {exhibit['notes']}"]
    text = "\n".join(lines)
    print("\n" + text)

    bench_id = stable_bench_id(str(exhibit["title"]))
    RESULTS_DIR.mkdir(exist_ok=True)
    atomic_write_text(str(RESULTS_DIR / f"{bench_id}.txt"), text + "\n")

    record = record_from_exhibit(
        exhibit,
        wall_s=time.perf_counter() - _CURRENT["started_s"],
        test=_CURRENT["nodeid"],
        config=exhibit.get("config"),
    )
    TrajectoryStore(_store_root()).append(record)
    return text


def _benchmark_plugin_missing() -> bool:
    try:
        import pytest_benchmark  # noqa: F401
    except ImportError:
        return True
    return False


if _benchmark_plugin_missing():
    import pytest

    class _FallbackBenchmark:
        """Plain-call stand-in for the pytest-benchmark fixture.

        Runs the benchmarked callable exactly once and returns its
        result; no statistics.  Only the surface the suite uses is
        provided (``__call__`` and ``pedantic``).
        """

        def __call__(self, func, *args, **kwargs):
            return func(*args, **kwargs)

        def pedantic(self, func, args=(), kwargs=None,
                     rounds=1, iterations=1, **_ignored):
            return func(*args, **(kwargs or {}))

    @pytest.fixture
    def benchmark():
        return _FallbackBenchmark()
