"""Section VIII-B: write errors vs retention errors.

The paper claims SuDoku "does not differentiate between write errors and
retention errors": with WER comparable to the retention BER, reliability
matches a retention-only system at the combined rate.  This bench runs
three campaigns -- retention-only, retention + equal WER, and
retention-only at double rate -- and checks the middle one behaves like
the last.
"""

import random

import numpy as np

from conftest import emit
from repro.core.engine import SuDokuZ
from repro.core.linecodec import LineCodec
from repro.reliability.montecarlo import heal, run_engine_campaign
from repro.sttram.array import STTRAMArray
from repro.sttram.faults import TransientFaultInjector
from repro.sttram.writeerror import WriteErrorChannel

GROUP = 32
LINES = GROUP * GROUP
BER = 5e-4
INTERVALS = 60
WRITES_PER_INTERVAL = 2048


def campaign_with_writes(retention_ber: float, wer: float, seed: int) -> int:
    """Intervals failed when writes (with WER) interleave with retention."""
    rng = np.random.default_rng(seed)
    codec = LineCodec()
    array = STTRAMArray(LINES, codec.stored_bits)
    engine = SuDokuZ(array, group_size=GROUP, codec=codec)
    channel = WriteErrorChannel(engine, wer, rng)
    local = random.Random(seed)
    injector = TransientFaultInjector(codec.stored_bits, retention_ber, rng)
    failures = 0
    for _ in range(INTERVALS):
        for _ in range(WRITES_PER_INTERVAL):
            channel.write_data(local.randrange(LINES), local.getrandbits(512))
        vectors = injector.error_vectors(LINES)
        for frame, vector in vectors.items():
            array.inject(frame, vector)
        touched = sorted(set(vectors) | set(array.faulty_lines()))
        counts = engine.scrub_frames(touched)
        if counts.get("due", 0) or counts.get("sdc", 0):
            failures += 1
        heal(array)
    return failures


def test_bench_write_error_equivalence(benchmark):
    def run_all():
        return {
            "retention only (BER)": campaign_with_writes(BER, 0.0, 21),
            "retention + equal WER": campaign_with_writes(BER, BER, 21),
            "retention only (~2x BER)": campaign_with_writes(2 * BER, 0.0, 21),
        }

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    emit(
        {
            "title": "Section VIII-B: write errors vs retention errors",
            "headers": ["configuration", f"failed intervals / {INTERVALS}"],
            "rows": [[name, count] for name, count in results.items()],
            "notes": "Writes touch ~2 lines/interval-line on average; WER "
                     "faults are corrected by the same machinery, so the "
                     "combined system tracks the doubled-retention one.",
        }
    )
    # Adding WER cannot *improve* on retention-only, and the combined
    # system stays within the doubled-retention envelope (plus noise).
    assert results["retention + equal WER"] >= results["retention only (BER)"] - 2
    assert (
        results["retention + equal WER"]
        <= results["retention only (~2x BER)"] + max(3, INTERVALS // 10)
    )
