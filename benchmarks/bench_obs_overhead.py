"""Telemetry overhead guard.

The obs layer promises to be effectively free: null-object defaults make
the disabled path a single attribute check, and the enabled path only
adds counter increments and clock reads around work that is already
expensive (CRC sweeps, repair algebra).  This benchmark runs the same
small campaign bare and fully instrumented (metrics + tracer) and
asserts the instrumented run stays within ~5 % of the bare one.

Min-of-N timing is used for the comparison: the minimum over several
interleaved repeats is the least noisy estimator of the true cost on a
shared CI box, where means and single shots both drift.
"""

import time

import numpy as np

from conftest import emit
from repro.obs import Telemetry
from repro.reliability.montecarlo import run_group_campaign

#: Small but failure-rich campaign: every mechanism (ecc1/raid4/sdr/
#: hash2) fires, so the instrumented run pays for spans too, not just
#: the per-line counters.
CAMPAIGN = dict(level="Z", ber=8e-4, trials=3, group_size=8)
REPEATS = 7
OVERHEAD_BUDGET = 0.05


def _bare():
    return run_group_campaign(**CAMPAIGN, rng=np.random.default_rng(17))


def _instrumented():
    return run_group_campaign(
        **CAMPAIGN, rng=np.random.default_rng(17),
        telemetry=Telemetry.create(),
    )


def _interleaved_min_times(repeats=REPEATS):
    """Min-of-N wall times for (bare, instrumented), interleaved.

    Interleaving means slow drift (thermal, noisy neighbours) hits both
    configurations equally instead of biasing whichever ran second.
    """
    best_bare = best_instrumented = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        _bare()
        best_bare = min(best_bare, time.perf_counter() - started)
        started = time.perf_counter()
        _instrumented()
        best_instrumented = min(
            best_instrumented, time.perf_counter() - started
        )
    return best_bare, best_instrumented


def test_bench_telemetry_overhead(benchmark):
    # Warm up both paths (imports, allocator, branch caches).
    _bare()
    _instrumented()

    bare_s, instrumented_s = _interleaved_min_times()
    overhead = instrumented_s / bare_s - 1.0

    benchmark(_instrumented)

    emit({
        "title": "Telemetry overhead on a small campaign",
        "headers": ["configuration", "min wall (ms)", "overhead"],
        "rows": [
            ["bare", f"{bare_s * 1e3:.2f}", "--"],
            [
                "metrics + tracer",
                f"{instrumented_s * 1e3:.2f}",
                f"{overhead * 100:+.1f}%",
            ],
        ],
        "notes": (
            f"min of {REPEATS} interleaved repeats; budget "
            f"{OVERHEAD_BUDGET * 100:.0f}%"
        ),
        # Tracked trajectory scalar: the baseline gates it with a "max"
        # threshold, so overhead creep fails CI before it reaches 5 %.
        "scalars": {"overhead": overhead},
        "config": dict(CAMPAIGN),
    })
    assert overhead < OVERHEAD_BUDGET
    # Identical outcomes, instrumented or not -- same seed, same numbers.
    assert _instrumented().outcomes == _bare().outcomes
