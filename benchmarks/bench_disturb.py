"""Section VI / Table V: disturb faults (PCM/Flash-style).

Disturb faults concentrate around hot lines, and physical neighbours
share a Hash-1 RAID-Group -- the worst clustering for a single-hash
design.  This bench hammers a hot region through the disturb channel
and compares SuDoku-Y (single hash) against SuDoku-Z (skewed dual
hash) on identical access/disturb streams.
"""

import random

import numpy as np

from conftest import emit
from repro.core.engine import SuDokuY, SuDokuZ
from repro.core.linecodec import LineCodec
from repro.sttram.array import STTRAMArray
from repro.sttram.disturb import DisturbChannel

GROUP = 16
NUM_LINES = 256
HOT_FRAMES = list(range(32, 40))  # one half of a Hash-1 group
EPOCHS = 120
DISTURB_P = 0.35


def hammer(engine_cls, seed=5) -> dict:
    codec = LineCodec()
    array = STTRAMArray(NUM_LINES, codec.stored_bits)
    engine = engine_cls(array, group_size=GROUP, codec=codec)
    rng = random.Random(seed)
    for frame in range(NUM_LINES):
        engine.write_data(frame, rng.getrandbits(512))
    channel = DisturbChannel(
        engine, DISTURB_P, burst_length=2, rng=np.random.default_rng(seed)
    )
    lost_epochs = 0
    for _ in range(EPOCHS):
        for frame in HOT_FRAMES:
            channel.write_data(frame, rng.getrandbits(512))
        counts = channel.scrub_all()
        if counts.get("due", 0) or counts.get("sdc", 0):
            lost_epochs += 1
            for frame in array.faulty_lines():
                array.restore(frame, array.golden(frame))
            engine.initialize_parities()
    return {
        "lost_epochs": lost_epochs,
        "disturb_events": channel.disturb_events,
        "sdr": engine.stats.sdr_invocations,
        "hash2": getattr(engine.stats, "hash2_invocations", 0),
    }


def test_bench_disturb_hammer(benchmark):
    def run_both():
        return {"SuDoku-Y": hammer(SuDokuY), "SuDoku-Z": hammer(SuDokuZ)}

    results = benchmark.pedantic(run_both, rounds=1, iterations=1)
    emit(
        {
            "title": "Section VI: neighbour-disturb hammering (hot Hash-1 group)",
            "headers": [
                "engine", f"lost epochs / {EPOCHS}", "disturb events",
                "SDR invocations", "Hash-2 invocations",
            ],
            "rows": [
                [name, r["lost_epochs"], r["disturb_events"], r["sdr"], r["hash2"]]
                for name, r in results.items()
            ],
            "notes": "2-bit disturb bursts at p=0.35 per neighbour per "
                     "access, hammered into 8 adjacent frames; the skewed "
                     "hash decorrelates the clustered damage.",
        }
    )
    assert results["SuDoku-Z"]["lost_epochs"] <= results["SuDoku-Y"]["lost_epochs"]
    assert results["SuDoku-Z"]["lost_epochs"] <= EPOCHS // 10
