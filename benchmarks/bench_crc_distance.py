"""Verification exhibit: detection distance of the shipped CRC-31.

The paper's analysis assumes a CRC-31 with Hamming distance 8 at line
length (the offline-unreachable Koopman polynomial).  This bench
measures the catalogue polynomial the reproduction actually uses:
an exact proof of HD >= 5 plus statistically clean randomized checks at
weights 5-8 -- and quantifies how the SDC model degrades if weight-5..7
patterns escape at the generic 2^-31 rate instead of never.
"""

import random

import pytest

from conftest import emit
from repro.coding.crc import CRC31_SUDOKU
from repro.coding.crcdistance import (
    min_weight_multiple_bound,
    syndrome_table,
    verify_low_weight_detection,
)
from repro.reliability.fit import fit_from_interval_probability
from repro.reliability.sudokumodel import SuDokuReliabilityModel


def test_bench_crc_distance(benchmark):
    def measure():
        report = min_weight_multiple_bound(CRC31_SUDOKU, data_bits=512)
        table = syndrome_table(CRC31_SUDOKU, data_bits=512)
        rng = random.Random(42)
        random_misses = {
            weight: verify_low_weight_detection(
                CRC31_SUDOKU, weight, samples=30_000, rng=rng, table=table
            )
            for weight in (5, 6, 7, 8)
        }
        return report, random_misses

    report, random_misses = benchmark.pedantic(measure, rounds=1, iterations=1)

    # Worst-case SDC if weights 5..7 escaped at the generic 2^-31 rate:
    # charge every 5+-fault line the misdetection factor.
    model = SuDokuReliabilityModel(ber=5.3e-6)
    p_5plus = model.p_at_least(5)
    from repro.reliability.binomial import complement_power

    pessimistic_sdc = (
        fit_from_interval_probability(
            complement_power(p_5plus, model.num_lines), model.interval_s
        )
        * model.crc_misdetect
    )

    rows = [
        ["exact search: undetected patterns (w<=4)", len(report.undetected)],
        ["proven detection distance", f">= {report.proven_distance_at_least}"],
    ]
    rows += [
        [f"random misses at weight {weight} (30k samples)", misses]
        for weight, misses in random_misses.items()
    ]
    rows += [
        ["SDC FIT (HD-8 assumption)", model.sdc_fit()],
        ["SDC FIT (pessimistic: 2^-31 beyond w=4)", pessimistic_sdc],
        ["1-FIT target margin (pessimistic)", 1.0 / pessimistic_sdc],
    ]
    emit(
        {
            "title": "CRC-31 detection distance at line length",
            "headers": ["quantity", "value"],
            "rows": rows,
            "notes": "Even the pessimistic SDC stays orders of magnitude "
                     "below the 1-FIT target, so the polynomial substitution "
                     "cannot change any conclusion.",
        }
    )
    assert report.undetected == ()
    assert all(misses == 0 for misses in random_misses.values())
    assert pessimistic_sdc < 1e-3
