"""Fig. 8: execution time of SuDoku-Z normalised to an ideal fault-free
cache, across the full workload suite."""

import pytest

from conftest import emit
from repro.analysis.experiments import fig8_performance

#: Accesses per core per run; large enough to cover multiple scrub
#: intervals of activity, small enough to keep the full suite tractable.
ACCESSES = 8_000


def test_bench_fig8_performance(benchmark):
    exhibit = benchmark.pedantic(
        fig8_performance,
        kwargs={"accesses_per_core": ACCESSES, "seed": 1},
        rounds=1,
        iterations=1,
    )
    emit(exhibit)
    from repro.analysis.charts import bar_chart

    workload_rows = exhibit["rows"][:-1]
    print("\nslowdown per workload (%):")
    print(
        bar_chart(
            [str(row[0]) for row in workload_rows],
            [float(row[3]) for row in workload_rows],
            unit="%",
        )
    )
    from conftest import RESULTS_DIR
    from repro.analysis.tables import format_table
    from repro.obs.atomicio import atomic_write_text
    from repro.perf.summary import summarise

    slowdowns = {str(row[0]): float(row[3]) / 100 for row in workload_rows}
    suite_rows = [
        [s.suite, s.count, s.mean * 100, (s.geomean_ratio - 1) * 100,
         s.worst * 100, s.worst_workload]
        for s in summarise(slowdowns)
    ]
    suite_table = format_table(
        ["suite", "n", "mean %", "geomean %", "worst %", "worst workload"],
        suite_rows,
    )
    print("\nper-suite breakdown:\n" + suite_table)
    atomic_write_text(
        str(RESULTS_DIR / "fig_8_suite_breakdown.txt"), suite_table + "\n"
    )

    mean_row = exhibit["rows"][-1]
    assert mean_row[0] == "MEAN"
    mean_slowdown_pct = mean_row[3]
    # Paper: ~0.1-0.15% average slowdown; assert the reproduction stays
    # in the sub-1% regime and is not negative beyond noise.
    assert -0.05 <= mean_slowdown_pct < 1.0
    # No individual workload suffers a material slowdown.
    for row in exhibit["rows"][:-1]:
        assert row[3] < 3.0, f"{row[0]} slowed by {row[3]:.2f}%"
