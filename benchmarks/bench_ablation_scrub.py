"""Ablation: scrub scheduling policy (opportunistic vs blocking).

The paper sizes the 20 ms interval so scrub bandwidth stays "within a
few percent" and attributes Fig. 8's overhead to the syndrome check and
corrections, implying demand-priority scrubbing.  This bench quantifies
what naive demand-blocking scrub chunks would instead cost.
"""

import pytest

from conftest import emit
from repro.cache.geometry import CacheGeometry
from repro.perf.llc import LLCConfig
from repro.perf.system import SystemConfig, SystemSimulator

GEOMETRY = CacheGeometry(capacity_bytes=1 << 20, line_bytes=64, ways=8)
ACCESSES = 6_000


def run(priority: str) -> float:
    llc = LLCConfig.sudoku(
        corrections_per_interval=1.0,
        num_lines=GEOMETRY.num_lines,
        scrub_priority=priority,
    )
    config = SystemConfig(geometry=GEOMETRY, llc=llc)
    return SystemSimulator(config, "mcf", ACCESSES, seed=3, config_label=priority).run()


def test_bench_scrub_policy_ablation(benchmark):
    def both():
        ideal_config = SystemConfig(
            geometry=GEOMETRY, llc=LLCConfig.ideal(num_lines=GEOMETRY.num_lines)
        )
        ideal = SystemSimulator(ideal_config, "mcf", ACCESSES, seed=3, config_label="ideal").run()
        return ideal, run("opportunistic"), run("blocking")

    ideal, opportunistic, blocking = benchmark.pedantic(both, rounds=1, iterations=1)
    slow_opp = opportunistic.execution_time_s / ideal.execution_time_s - 1
    slow_blk = blocking.execution_time_s / ideal.execution_time_s - 1
    emit(
        {
            "title": "Ablation: scrub scheduling policy (memory-bound workload)",
            "headers": ["policy", "slowdown %", "scrub deficit (lines)"],
            "rows": [
                ["ideal (no scrub)", 0.0, 0.0],
                ["opportunistic", slow_opp * 100, opportunistic.scrub_deficit_lines],
                ["blocking chunks", slow_blk * 100, 0.0],
            ],
            "notes": "Opportunistic scrub hides in idle bank slots (the "
                     "paper's operating assumption); blocking chunks charge "
                     "demand traffic directly.",
        }
    )
    assert slow_opp <= slow_blk + 1e-9
    assert slow_opp < 0.02
    # Idle capacity covered the scrub target.
    assert opportunistic.scrub_deficit_lines == pytest.approx(0.0, abs=1.0)
