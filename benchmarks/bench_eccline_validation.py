"""Functional validation of the ECC-k binomial model (Table II's engine).

Table II's FIT ladder rests on P[line fails] = B>=(n, t+1, p).  This
bench drives the *real* BCH encoder/decoder (the same construction that
prices ECC-6 at 60 bits) through fault injection at an accelerated BER
and checks the measured line-failure frequency against the binomial
tail -- plus the CPPC model's 2+-faulty-lines composition, measured on
the functional CPPC cache.
"""

import numpy as np
import pytest

from conftest import emit
from repro.baselines.cppc import CPPCCache
from repro.baselines.eccline import ECCLineCache
from repro.reliability.binomial import binomial_tail
from repro.reliability.montecarlo import run_engine_campaign

LINES = 256
T = 2
BER = 3.4e-4
INTERVALS = 150


def test_bench_eccline_model_validation(benchmark):
    def campaign():
        cache = ECCLineCache(num_lines=LINES, t=T, data_bits=512)
        return cache, run_engine_campaign(
            cache, ber=BER, intervals=INTERVALS,
            rng=np.random.default_rng(31), randomize_content=False,
        )

    cache, result = benchmark.pedantic(campaign, rounds=1, iterations=1)
    stored_bits = cache.array.line_bits
    line_intervals = LINES * INTERVALS
    sdc = result.outcomes.get("sdc", 0)
    due = result.outcomes.get("due", 0)
    measured_fail = (due + sdc) / line_intervals
    predicted_fail = binomial_tail(stored_bits, T + 1, BER)
    measured_fix = result.outcomes.get("corrected_ecc1", 0) / line_intervals
    predicted_fix = binomial_tail(stored_bits, 1, BER) - predicted_fail

    # Bounded-distance decoders *miscorrect* the fraction of beyond-t
    # patterns whose syndrome lies in a decodable coset: the Hamming-
    # sphere coverage V_t(n) / 2^r.  SuDoku's per-line CRC exists to
    # close exactly this silent channel; bare ECC-k has it open.
    coverage = (
        1 + stored_bits + stored_bits * (stored_bits - 1) // 2
    ) / float(1 << cache.code.num_check_bits)
    measured_miscorrect = sdc / (due + sdc) if (due + sdc) else 0.0

    emit(
        {
            "title": f"Functional validation: per-line ECC-{T} vs binomial model",
            "headers": ["quantity", "measured", "model"],
            "rows": [
                ["P(line beyond t)/interval", measured_fail, predicted_fail],
                ["P(line corrected)/interval", measured_fix, predicted_fix],
                ["silent miscorrection fraction", measured_miscorrect, coverage],
            ],
            "notes": f"{LINES} lines x {INTERVALS} intervals at BER {BER:g}, "
                     "real BCH decode on every faulty line.  Beyond-t "
                     "patterns miscorrect silently at the sphere-coverage "
                     "rate -- the channel SuDoku's CRC-31 closes and bare "
                     "per-line ECC leaves open.",
        }
    )
    assert measured_fail == pytest.approx(predicted_fail, rel=0.5)
    assert measured_fix == pytest.approx(predicted_fix, rel=0.1)
    assert measured_miscorrect < 3 * coverage + 0.05


def test_bench_cppc_model_validation(benchmark):
    ber = 2e-5  # P(line faulty) ~ 1%, P(cache fails) ~ 25%
    intervals = 120

    def campaign():
        cache = CPPCCache(num_lines=LINES)
        return cache, run_engine_campaign(
            cache, ber=ber, intervals=intervals,
            rng=np.random.default_rng(33), randomize_content=False,
        )

    cache, result = benchmark.pedantic(campaign, rounds=1, iterations=1)
    p_line_faulty = binomial_tail(cache.array.line_bits, 1, ber)
    predicted = binomial_tail(LINES, 2, p_line_faulty)
    low, high = result.wilson_interval(z=2.6)
    emit(
        {
            "title": "Functional validation: CPPC vs 2+-faulty-lines model",
            "headers": ["quantity", "value"],
            "rows": [
                ["measured P(cache fails)/interval", result.failure_probability],
                ["99% CI low", low],
                ["99% CI high", high],
                ["model", predicted],
            ],
            "notes": f"{LINES}-line CPPC at BER {ber:g}; failure whenever "
                     "two or more lines fault in one interval.",
        }
    )
    assert low <= predicted <= high