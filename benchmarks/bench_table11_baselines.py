"""Table XI: CPPC / RAID-6 / 2DP vs SuDoku (analytical + functional)."""

import numpy as np
import pytest

from conftest import emit
from repro.analysis.experiments import table11_baselines
from repro.baselines.cppc import CPPCCache
from repro.baselines.raid6 import RAID6Cache
from repro.baselines.twodp import TwoDPCache
from repro.core.engine import SuDokuZ
from repro.core.linecodec import LineCodec
from repro.reliability.montecarlo import run_engine_campaign
from repro.sttram.array import STTRAMArray


def test_bench_table11_analytical(benchmark):
    exhibit = benchmark(table11_baselines)
    emit(exhibit)
    fits = {row[0]: row[1] for row in exhibit["rows"]}
    assert fits["SuDoku"] * 1e6 < min(
        fits["CPPC + CRC-31"], fits["RAID-6 + CRC-31"], fits["2DP + ECC-1 + CRC-31"]
    )


def test_bench_table11_functional_faceoff(benchmark):
    """Head-to-head fault-injection campaign at an accelerated BER.

    All schemes see statistically identical fault processes; the ranking
    of measured interval-failure counts must reproduce the table.
    """

    def campaign_all():
        ber, intervals, group = 4e-4, 50, 16
        codec = LineCodec()
        results = {}
        schemes = {
            "CPPC": lambda: CPPCCache(num_lines=256),
            "RAID-6": lambda: RAID6Cache(num_lines=256, group_size=group),
            "2DP": lambda: TwoDPCache(
                STTRAMArray(256, codec.stored_bits), group_size=group, codec=codec
            ),
            "SuDoku-Z": lambda: SuDokuZ(
                STTRAMArray(256, codec.stored_bits), group_size=group, codec=codec
            ),
        }
        for name, build in schemes.items():
            rng = np.random.default_rng(17)  # same fault stream for all
            result = run_engine_campaign(
                build(), ber=ber, intervals=intervals, rng=rng,
                randomize_content=False,
            )
            results[name] = result.interval_failures
        return results

    results = benchmark.pedantic(campaign_all, rounds=1, iterations=1)
    emit(
        {
            "title": "Table XI (functional): failed intervals out of 50 at BER 4e-4",
            "headers": ["scheme", "failed intervals"],
            "rows": [[name, count] for name, count in results.items()],
            "notes": "256-line cache, 16-line groups, identical fault streams.",
        }
    )
    assert results["SuDoku-Z"] <= results["2DP"] <= results["CPPC"]
    assert results["SuDoku-Z"] <= results["RAID-6"] + 1
    assert results["CPPC"] >= 40  # CPPC collapses at this rate
