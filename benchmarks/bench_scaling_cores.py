"""Sensitivity: does SuDoku's overhead grow with core count?

The syndrome check and scrub/correction machinery are per-LLC, not
per-core; more cores mean more bank pressure for the same machinery to
hide under.  This bench runs the ideal-vs-SuDoku pair at 1-16 cores on
a memory-intensive profile and checks the marginal cost stays flat.
"""

import pytest

from conftest import emit
from repro.cache.geometry import CacheGeometry
from repro.perf.llc import LLCConfig
from repro.perf.system import SystemConfig, SystemSimulator

GEOMETRY = CacheGeometry(capacity_bytes=2 << 20, line_bytes=64, ways=8)
ACCESSES = 8_000
WORKLOAD = "milc"


def run_pair(num_cores: int) -> float:
    results = {}
    for label, llc in (
        ("ideal", LLCConfig.ideal(num_lines=GEOMETRY.num_lines)),
        ("sudoku", LLCConfig.sudoku(
            corrections_per_interval=4.0, num_lines=GEOMETRY.num_lines
        )),
    ):
        config = SystemConfig(
            num_cores=num_cores, geometry=GEOMETRY, llc=llc
        )
        results[label] = SystemSimulator(
            config, WORKLOAD, ACCESSES, seed=9, config_label=label
        ).run()
    return (
        results["sudoku"].execution_time_s / results["ideal"].execution_time_s
        - 1.0
    )


def test_bench_core_count_scaling(benchmark):
    def sweep():
        return {cores: run_pair(cores) for cores in (1, 2, 4, 8, 16)}

    slowdowns = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(
        {
            "title": "Sensitivity: SuDoku slowdown vs core count",
            "headers": ["cores", "slowdown %"],
            "rows": [
                [cores, value * 100] for cores, value in sorted(slowdowns.items())
            ],
            "notes": f"{WORKLOAD} in rate mode, {ACCESSES} accesses/core; "
                     "the resilience machinery is per-cache, so the "
                     "marginal cost must not compound with parallelism.",
        }
    )
    for cores, value in slowdowns.items():
        assert value < 0.02, f"{cores} cores slowed by {value:.2%}"
