"""MBU degradation: failure rate vs burst length across every scheme.

Transient thermal flips are independent single-bit events, but disturb
and wear-out faults arrive as *bursts* -- k physically adjacent cells
flipping together (the section-VI scaling concern).  This benchmark runs
the mixed-scenario campaign engine over SuDoku X/Y/Z and the five
baselines with fixed-length bursts of k = 1, 2, 4 bits and records how
each scheme's failure count degrades as k grows.

The load-bearing exhibit is the burst-vs-interleave comparison: with a
depth-D bit interleaver a k <= D burst lands at most one bit per logical
line, so the per-line ECC-1 baseline goes from failing on nearly every
length-4 event (D=1) to failing on none (D=4).  The gap is gated through
``benchmarks/baseline.json`` so a regression in the interleaver, the
burst injector, or the scenario plumbing fails CI.

Everything here is a deterministic pure function of SEED (the scenario
seed-tree contract), so the gated scalars are exact counts, not noisy
timings.
"""

from conftest import RESULTS_DIR, emit
from repro.obs.atomicio import atomic_write_json
from repro.reliability.scenario import (
    SCHEMES,
    BurstSpec,
    FaultScenario,
    run_scenario_campaign,
)

#: Per-line per-interval burst-event rate: high enough that 150 intervals
#: of a 64-line array see ~480 events (tight CIs on small hardware).
RATE = 0.05
BURST_LENGTHS = (1, 2, 4)
INTERLEAVE_DEPTHS = (1, 2, 4)
INTERVALS = 150
GROUP_SIZE = 8
SEED = 23


def _failures(scheme, length, interleave=1):
    scenario = FaultScenario(
        burst=BurstSpec.fixed_length(
            rate=RATE, length=length, interleave=interleave
        )
    )
    result = run_scenario_campaign(
        scheme, scenario, intervals=INTERVALS, group_size=GROUP_SIZE,
        seed=SEED,
    )
    return result


def test_bench_mbu_degradation(benchmark):
    by_scheme = {
        scheme: [_failures(scheme, k) for k in BURST_LENGTHS]
        for scheme in SCHEMES
    }
    rows = [
        [
            scheme,
            *(result.interval_failures for result in results),
            f"{results[-1].fit():.3g}",
        ]
        for scheme, results in by_scheme.items()
    ]

    # Burst-vs-interleave on the per-line ECC baseline: length-4 bursts
    # with depth-D interleaving damage at most ceil(4/D) bits per line,
    # so D=4 returns every event to ECC-1 territory.
    interleave_failures = [
        _failures("eccline", 4, interleave=depth).interval_failures
        for depth in INTERLEAVE_DEPTHS
    ]
    rows += [
        [f"eccline D={depth}", "", "", failures, ""]
        for depth, failures in zip(INTERLEAVE_DEPTHS, interleave_failures)
    ]
    interleave_gain = interleave_failures[0] - interleave_failures[-1]

    # One pedantic round on the cheapest cell (steady-state scenario cost).
    benchmark.pedantic(
        _failures, args=("Z", 1), rounds=1, iterations=1
    )

    emit({
        "title": "MBU degradation vs burst length (scenario campaigns)",
        "headers": [
            "scheme",
            *(f"fails k={k}" for k in BURST_LENGTHS),
            "FIT @ k=4",
        ],
        "rows": rows,
        "notes": (
            f"{INTERVALS} intervals x {GROUP_SIZE * GROUP_SIZE} lines, "
            f"burst rate {RATE}/line/interval, seed {SEED}; eccline D-rows "
            f"re-run k=4 under depth-D bit interleaving "
            f"({interleave_failures[0]} -> {interleave_failures[-1]} "
            "failing intervals)"
        ),
        "scalars": {
            "interleave_gain": float(interleave_gain),
            "eccline_flat_failures": float(interleave_failures[0]),
            "eccline_interleaved_failures": float(interleave_failures[-1]),
            "z_k4_failures": float(by_scheme["Z"][-1].interval_failures),
        },
        "config": {
            "rate": RATE, "burst_lengths": list(BURST_LENGTHS),
            "intervals": INTERVALS, "group_size": GROUP_SIZE, "seed": SEED,
        },
    })
    RESULTS_DIR.mkdir(exist_ok=True)
    atomic_write_json(str(RESULTS_DIR / "mbu_degradation.json"), {
        "rate": RATE,
        "intervals": INTERVALS,
        "group_size": GROUP_SIZE,
        "seed": SEED,
        "failures": {
            scheme: {
                str(k): result.interval_failures
                for k, result in zip(BURST_LENGTHS, results)
            }
            for scheme, results in by_scheme.items()
        },
        "eccline_interleave_failures": {
            str(depth): failures
            for depth, failures in zip(INTERLEAVE_DEPTHS, interleave_failures)
        },
        "interleave_gain": interleave_gain,
    })

    # The geometric claim itself: depth-4 interleaving must fully absorb
    # length-4 bursts for the ECC-1 baseline, and degradation must be
    # monotone in burst length for every scheme.
    assert interleave_failures[-1] == 0
    assert interleave_gain > 0
    for scheme, results in by_scheme.items():
        failures = [result.interval_failures for result in results]
        assert failures == sorted(failures), (scheme, failures)
