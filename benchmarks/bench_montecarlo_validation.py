"""Model-vs-functional validation: the reproduction's licence to quote
analytical FITs at the paper's operating point.

Runs fault-injection campaigns on the real bit-level engines at
accelerated BERs (where failures are observable) and compares against
the analytical models evaluated at the same geometry.
"""

import numpy as np
import pytest

from conftest import emit
from repro.reliability.montecarlo import run_group_campaign
from repro.reliability.sudokumodel import SuDokuReliabilityModel

GROUP = 32
LINES = GROUP * GROUP

#: (level, accelerated BER, campaign intervals).  BERs are chosen so the
#: per-interval failure probability sits in an observable band.
CAMPAIGNS = [
    ("X", 2.0e-4, 300),
    ("Y", 6.0e-4, 200),
    ("Z", 8.0e-4, 150),
]


@pytest.mark.parametrize("level,ber,intervals", CAMPAIGNS)
def test_bench_mc_validation(benchmark, level, ber, intervals):
    result = benchmark.pedantic(
        run_group_campaign,
        kwargs=dict(
            level=level, ber=ber, trials=intervals, group_size=GROUP,
            rng=np.random.default_rng(1234),
        ),
        rounds=1,
        iterations=1,
    )
    model = SuDokuReliabilityModel(ber=ber, group_size=GROUP, num_lines=LINES)
    predicted = {
        "X": model.cache_fail_x,
        "Y": model.cache_fail_y,
        "Z": model.cache_fail_z,
    }[level]()
    low, high = result.wilson_interval(z=2.6)
    emit(
        {
            "title": f"MC validation: SuDoku-{level} at BER {ber:g}",
            "headers": ["quantity", "value"],
            "rows": [
                ["measured failure prob / interval", result.failure_probability],
                ["99% CI low", low],
                ["99% CI high", high],
                ["analytical model", predicted],
                ["SDC events", result.outcomes.get("sdc", 0)],
            ],
            "notes": (
                "The Y/Z closed forms are conservative (upper bounds): the "
                "functional peeling repair recovers patterns the model "
                "writes off."
            ),
        }
    )
    assert result.outcomes.get("sdc", 0) == 0
    if level == "X":
        # X's model is exact at leading order: the CI must bracket it.
        assert low <= predicted <= high
    else:
        # Y/Z models are documented upper bounds on the failure rate.
        assert result.failure_probability <= max(predicted * 1.5, high)
