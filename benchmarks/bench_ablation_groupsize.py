"""Ablation (section III-D): RAID-Group size trade-off.

The group size sets three quantities at once: parity storage (smaller
groups cost more PLT), repair latency (larger groups read more lines),
and reliability (larger groups collide more often).  This bench sweeps
the size and regenerates the trade-off the paper describes around its
512-line default.
"""

from conftest import emit
from repro.core.stats import LatencyModel
from repro.reliability.sudokumodel import SuDokuReliabilityModel

BER = 5.3e-6
LINE_BITS = 553
NUM_LINES = 1 << 20


def sweep():
    latency = LatencyModel()
    rows = []
    for group_size in (64, 128, 256, 512, 1024, 2048):
        model = SuDokuReliabilityModel(
            ber=BER, group_size=group_size, num_lines=NUM_LINES
        )
        parity_bits = 2.0 * LINE_BITS * (NUM_LINES // group_size) / NUM_LINES
        rows.append(
            [
                group_size,
                41 + parity_bits,
                latency.raid4_repair(group_size) * 1e6,
                model.mttf_x_seconds(),
                model.fit_z(),
            ]
        )
    return rows


def test_bench_groupsize_ablation(benchmark):
    rows = benchmark(sweep)
    emit(
        {
            "title": "Ablation: RAID-Group size (section III-D trade-off)",
            "headers": [
                "group size", "bits/line", "RAID-4 repair (us)",
                "SuDoku-X MTTF (s)", "SuDoku-Z FIT",
            ],
            "rows": rows,
            "notes": "Paper default 512 balances the three axes.",
        }
    )
    by_size = {row[0]: row for row in rows}
    # Storage falls and repair latency rises with group size.
    assert by_size[64][1] > by_size[512][1] > by_size[2048][1]
    assert by_size[64][2] < by_size[512][2] < by_size[2048][2]
    # Reliability worsens with group size (more collisions per group).
    assert by_size[64][4] < by_size[512][4] < by_size[2048][4]
    # The paper's default still meets the FIT target with margin.
    assert by_size[512][4] < 1e-3
