"""Fault-indexed sparse scrub fast path: speedup over the dense pass.

At the paper's nominal BER (5.3e-6 per bit per 20 ms interval, Table I)
a 2^16-line array carries only a few hundred faulty lines per interval,
yet a dense scrub decodes all 65536 of them.  The sparse fast path
(:meth:`repro.core.engine.SuDokuEngine.scrub_sparse`) walks the array's
dirty-frame index instead and bulk-accounts the clean population,
turning the pass from O(lines) into O(faults).

This benchmark injects one interval of faults, times a dense pass, heals
and re-injects the *identical* faults (same-seeded injector against the
same golden content), times a sparse pass, and checks two properties:

* the outcome counters are bit-identical between the passes (the golden
  equivalence the fast path is allowed to exist under), and
* the sparse pass is at least 10x faster at this geometry (in practice
  it lands orders of magnitude above that floor).
"""

import time

import numpy as np

from conftest import RESULTS_DIR, emit
from repro.obs.atomicio import atomic_write_json
from repro.core.engine import build_engine
from repro.core.linecodec import LineCodec
from repro.reliability.montecarlo import heal
from repro.sttram.array import STTRAMArray
from repro.sttram.faults import TransientFaultInjector

#: Table I nominal: delta = 60 at 20 ms gives BER 5.3e-6.
BER = 5.3e-6
NUM_LINES = 1 << 16
GROUP_SIZE = 256
SEED = 23
REQUIRED_SPEEDUP = 10.0


def _inject(codec, array):
    injector = TransientFaultInjector(
        codec.stored_bits, BER, rng=np.random.default_rng(SEED)
    )
    return injector.inject_frames(array)


def test_bench_scrub_fastpath(benchmark):
    codec = LineCodec()
    array = STTRAMArray(NUM_LINES, codec.stored_bits)
    engine = build_engine("X", array, group_size=GROUP_SIZE, codec=codec)

    dirty = _inject(codec, array)
    started = time.perf_counter()
    dense_counts = engine.scrub_all()
    dense_wall = time.perf_counter() - started
    assert array.dirty_frames() == []

    heal(array)
    assert _inject(codec, array) == dirty  # same seed, same faults

    started = time.perf_counter()
    sparse_counts = engine.scrub_sparse()
    sparse_wall = time.perf_counter() - started
    assert array.dirty_frames() == []

    assert sparse_counts == dense_counts, (
        "sparse pass diverged from dense outcome counters"
    )

    # One pedantic round on the fast path itself (already-clean array:
    # the steady-state cost a campaign pays per interval between faults).
    benchmark.pedantic(engine.scrub_sparse, rounds=1, iterations=1)

    speedup = dense_wall / sparse_wall
    emit({
        "title": "Sparse scrub fast path vs dense pass (2^16 lines)",
        "headers": ["pass", "wall (s)", "lines decoded"],
        "rows": [
            ["dense", f"{dense_wall:.3f}", NUM_LINES],
            ["sparse", f"{sparse_wall:.4f}", len(dirty)],
            ["speedup", f"{speedup:.0f}x", ""],
        ],
        "notes": (
            f"SuDoku-X, {NUM_LINES} lines x {codec.stored_bits} stored "
            f"bits at BER {BER:g}: {len(dirty)} dirty lines; outcome "
            f"counters bit-identical between passes"
        ),
        # Tracked trajectory scalar; a "min"-direction baseline entry
        # fails CI if the fast path loses its edge over the dense pass.
        "scalars": {"speedup": speedup},
        "config": {
            "num_lines": NUM_LINES, "group_size": GROUP_SIZE, "ber": BER,
        },
    })
    RESULTS_DIR.mkdir(exist_ok=True)
    atomic_write_json(str(RESULTS_DIR / "scrub_fastpath.json"), {
        "num_lines": NUM_LINES,
        "stored_bits": codec.stored_bits,
        "ber": BER,
        "group_size": GROUP_SIZE,
        "dirty_lines": len(dirty),
        "dense_wall_s": dense_wall,
        "sparse_wall_s": sparse_wall,
        "speedup": speedup,
        "counters_identical": sparse_counts == dense_counts,
    })

    assert speedup >= REQUIRED_SPEEDUP, (
        f"sparse pass only {speedup:.1f}x faster (need {REQUIRED_SPEEDUP}x)"
    )


#: The backend bench runs scan-heavy: a wider RAID group makes every
#: group repair decode more members, which is exactly the bulk work the
#: batched backend exists to absorb.
BACKEND_NUM_LINES = 1 << 20
BACKEND_GROUP_SIZE = 1024
BACKEND_BER = 1e-5
BACKEND_SEED = 29
BACKEND_REQUIRED_SPEEDUP = 10.0


def test_bench_numpy_backend_speedup(benchmark):
    """Numpy bit-plane kernels vs the reference backend, sparse scrub.

    Both passes resolve the identical fault population (same-seeded
    injector against the same golden content) and must produce
    bit-identical outcome counters -- the contract under which the numpy
    backend is allowed to exist.  The gate is the wall-clock ratio: the
    batched backend has to beat the scalar loops by at least 10x at this
    geometry, where reference time is dominated by per-member scalar
    decodes inside RAID-group scans.
    """
    codec = LineCodec()
    array = STTRAMArray(BACKEND_NUM_LINES, codec.stored_bits)
    engine = build_engine(
        "X", array, group_size=BACKEND_GROUP_SIZE, codec=codec
    )

    def _reinject():
        heal(array)
        injector = TransientFaultInjector(
            codec.stored_bits, BACKEND_BER,
            rng=np.random.default_rng(BACKEND_SEED),
        )
        return injector.inject_frames(array)

    walls = {}
    counters = {}
    for backend in ("reference", "numpy"):
        engine.set_backend(backend)
        # Warm the per-codec vectorisation tables outside the timed
        # region; campaigns build them once per process, not per pass.
        engine.backend.batch_decode(codec, [codec.encode(0)])
        # Best of two passes: the numpy pass is short enough that a GC
        # or allocator hiccup would otherwise dominate the ratio.
        for _ in range(2):
            dirty = _reinject()
            started = time.perf_counter()
            counts = engine.scrub_sparse()
            wall = time.perf_counter() - started
            walls[backend] = min(wall, walls.get(backend, wall))
            counters[backend] = counts
        assert array.dirty_frames() == []

    assert counters["numpy"] == counters["reference"], (
        "numpy backend diverged from reference outcome counters"
    )

    # One pedantic round on the numpy fast path (already-clean array).
    benchmark.pedantic(engine.scrub_sparse, rounds=1, iterations=1)

    speedup = walls["reference"] / walls["numpy"]
    emit({
        "title": "Numpy kernel backend vs reference: sparse scrub (2^20 lines)",
        "headers": ["backend", "wall (s)", "dirty lines"],
        "rows": [
            ["reference", f"{walls['reference']:.3f}", len(dirty)],
            ["numpy", f"{walls['numpy']:.4f}", len(dirty)],
            ["speedup", f"{speedup:.1f}x", ""],
        ],
        "notes": (
            f"SuDoku-X, {BACKEND_NUM_LINES} lines x {codec.stored_bits} "
            f"stored bits at BER {BACKEND_BER:g}, RAID groups of "
            f"{BACKEND_GROUP_SIZE}: outcome counters bit-identical "
            f"between backends"
        ),
        # Tracked trajectory scalar; a "min"-direction baseline entry
        # fails CI if the vectorised backend loses its edge.
        "scalars": {"speedup": speedup},
        "config": {
            "num_lines": BACKEND_NUM_LINES,
            "group_size": BACKEND_GROUP_SIZE,
            "ber": BACKEND_BER,
        },
    })
    RESULTS_DIR.mkdir(exist_ok=True)
    atomic_write_json(str(RESULTS_DIR / "kernel_backend_speedup.json"), {
        "num_lines": BACKEND_NUM_LINES,
        "stored_bits": codec.stored_bits,
        "ber": BACKEND_BER,
        "group_size": BACKEND_GROUP_SIZE,
        "dirty_lines": len(dirty),
        "reference_wall_s": walls["reference"],
        "numpy_wall_s": walls["numpy"],
        "speedup": speedup,
        "counters_identical": counters["numpy"] == counters["reference"],
    })

    assert speedup >= BACKEND_REQUIRED_SPEEDUP, (
        f"numpy backend only {speedup:.1f}x faster "
        f"(need {BACKEND_REQUIRED_SPEEDUP}x)"
    )
