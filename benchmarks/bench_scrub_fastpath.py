"""Fault-indexed sparse scrub fast path: speedup over the dense pass.

At the paper's nominal BER (5.3e-6 per bit per 20 ms interval, Table I)
a 2^16-line array carries only a few hundred faulty lines per interval,
yet a dense scrub decodes all 65536 of them.  The sparse fast path
(:meth:`repro.core.engine.SuDokuEngine.scrub_sparse`) walks the array's
dirty-frame index instead and bulk-accounts the clean population,
turning the pass from O(lines) into O(faults).

This benchmark injects one interval of faults, times a dense pass, heals
and re-injects the *identical* faults (same-seeded injector against the
same golden content), times a sparse pass, and checks two properties:

* the outcome counters are bit-identical between the passes (the golden
  equivalence the fast path is allowed to exist under), and
* the sparse pass is at least 10x faster at this geometry (in practice
  it lands orders of magnitude above that floor).
"""

import time

import numpy as np

from conftest import RESULTS_DIR, emit
from repro.obs.atomicio import atomic_write_json
from repro.core.engine import build_engine
from repro.core.linecodec import LineCodec
from repro.reliability.montecarlo import heal
from repro.sttram.array import STTRAMArray
from repro.sttram.faults import TransientFaultInjector

#: Table I nominal: delta = 60 at 20 ms gives BER 5.3e-6.
BER = 5.3e-6
NUM_LINES = 1 << 16
GROUP_SIZE = 256
SEED = 23
REQUIRED_SPEEDUP = 10.0


def _inject(codec, array):
    injector = TransientFaultInjector(
        codec.stored_bits, BER, rng=np.random.default_rng(SEED)
    )
    return injector.inject_frames(array)


def test_bench_scrub_fastpath(benchmark):
    codec = LineCodec()
    array = STTRAMArray(NUM_LINES, codec.stored_bits)
    engine = build_engine("X", array, group_size=GROUP_SIZE, codec=codec)

    dirty = _inject(codec, array)
    started = time.perf_counter()
    dense_counts = engine.scrub_all()
    dense_wall = time.perf_counter() - started
    assert array.dirty_frames() == []

    heal(array)
    assert _inject(codec, array) == dirty  # same seed, same faults

    started = time.perf_counter()
    sparse_counts = engine.scrub_sparse()
    sparse_wall = time.perf_counter() - started
    assert array.dirty_frames() == []

    assert sparse_counts == dense_counts, (
        "sparse pass diverged from dense outcome counters"
    )

    # One pedantic round on the fast path itself (already-clean array:
    # the steady-state cost a campaign pays per interval between faults).
    benchmark.pedantic(engine.scrub_sparse, rounds=1, iterations=1)

    speedup = dense_wall / sparse_wall
    emit({
        "title": "Sparse scrub fast path vs dense pass (2^16 lines)",
        "headers": ["pass", "wall (s)", "lines decoded"],
        "rows": [
            ["dense", f"{dense_wall:.3f}", NUM_LINES],
            ["sparse", f"{sparse_wall:.4f}", len(dirty)],
            ["speedup", f"{speedup:.0f}x", ""],
        ],
        "notes": (
            f"SuDoku-X, {NUM_LINES} lines x {codec.stored_bits} stored "
            f"bits at BER {BER:g}: {len(dirty)} dirty lines; outcome "
            f"counters bit-identical between passes"
        ),
        # Tracked trajectory scalar; a "min"-direction baseline entry
        # fails CI if the fast path loses its edge over the dense pass.
        "scalars": {"speedup": speedup},
        "config": {
            "num_lines": NUM_LINES, "group_size": GROUP_SIZE, "ber": BER,
        },
    })
    RESULTS_DIR.mkdir(exist_ok=True)
    atomic_write_json(str(RESULTS_DIR / "scrub_fastpath.json"), {
        "num_lines": NUM_LINES,
        "stored_bits": codec.stored_bits,
        "ber": BER,
        "group_size": GROUP_SIZE,
        "dirty_lines": len(dirty),
        "dense_wall_s": dense_wall,
        "sparse_wall_s": sparse_wall,
        "speedup": speedup,
        "counters_identical": sparse_counts == dense_counts,
    })

    assert speedup >= REQUIRED_SPEEDUP, (
        f"sparse pass only {speedup:.1f}x faster (need {REQUIRED_SPEEDUP}x)"
    )
