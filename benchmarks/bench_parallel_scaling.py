"""Sharded campaign scaling: wall-clock speedup vs ``--shards``.

The reliability campaigns dominate the cost of the whole evaluation, so
the sharded executor (:mod:`repro.parallel`) is what makes the paper's
large configurations tractable.  This benchmark runs one Monte-Carlo
campaign at 1, 2, and 4 shards, records the wall time and speedup per
shard count, and checks two properties:

* every sharded run merges to the number of intervals requested (no
  dropped work, regardless of core count);
* on a machine with >= 4 cores, 4 shards deliver >= 2.5x over serial
  (below that core count the speedup is recorded but not asserted --
  a 1-core container runs the shards sequentially).

Min-of-N timing is deliberately *not* used here: process start-up and
queue traffic are part of the cost being measured, so each configuration
is timed once over a campaign long enough to amortise noise.
"""

import os
import time

from conftest import RESULTS_DIR, emit
from repro.obs.atomicio import atomic_write_json
from repro.parallel import run_sharded_campaign

#: Long enough that per-interval work dwarfs process start-up, small
#: enough to stay friendly to CI runners.
CAMPAIGN = dict(level="Z", ber=5e-3, intervals=16, group_size=16)
SHARD_COUNTS = (1, 2, 4)
SEED = 11
MIN_CORES_FOR_ASSERT = 4
REQUIRED_SPEEDUP = 2.5


def _timed_run(shards, backend="reference"):
    started = time.perf_counter()
    result = run_sharded_campaign(
        CAMPAIGN["level"], CAMPAIGN["ber"], CAMPAIGN["intervals"],
        CAMPAIGN["group_size"], shards=shards, seed=SEED, backend=backend,
    )
    return time.perf_counter() - started, result


def test_bench_parallel_scaling(benchmark):
    cores = os.cpu_count() or 1
    # Warm-up: imports, allocator, and the worker start path.
    _timed_run(2)

    walls = {}
    results = {}
    for shards in SHARD_COUNTS:
        wall, result = _timed_run(shards)
        walls[shards] = wall
        results[shards] = result
        assert result.intervals == CAMPAIGN["intervals"]

    # Sharding composes with the kernel backends: a numpy-backed run at
    # the same shard count merges to bit-identical outcome counters.
    _, numpy_result = _timed_run(max(SHARD_COUNTS), backend="numpy")
    assert numpy_result.as_dict() == results[max(SHARD_COUNTS)].as_dict(), (
        "numpy backend diverged from reference under sharding"
    )

    # One pedantic round: each configuration already ran above, and a
    # multi-round rerun of a ~20 s campaign would dominate the whole
    # benchmark suite for no extra signal.
    benchmark.pedantic(
        lambda: _timed_run(max(SHARD_COUNTS)), rounds=1, iterations=1
    )

    speedups = {shards: walls[1] / walls[shards] for shards in SHARD_COUNTS}
    emit({
        "title": "Sharded campaign scaling (wall-clock speedup)",
        "headers": ["shards", "wall (s)", "speedup"],
        "rows": [
            [shards, f"{walls[shards]:.2f}", f"{speedups[shards]:.2f}x"]
            for shards in SHARD_COUNTS
        ],
        "notes": (
            f"{CAMPAIGN['intervals']} intervals at BER "
            f"{CAMPAIGN['ber']:g}, {cores} core(s); the >= "
            f"{REQUIRED_SPEEDUP}x @ 4 shards gate applies at >= "
            f"{MIN_CORES_FOR_ASSERT} cores"
        ),
    })
    RESULTS_DIR.mkdir(exist_ok=True)
    atomic_write_json(str(RESULTS_DIR / "parallel_scaling.json"), {
        "cores": cores,
        "campaign": CAMPAIGN,
        "wall_s": {str(k): v for k, v in walls.items()},
        "speedup": {str(k): v for k, v in speedups.items()},
    })

    if cores >= MIN_CORES_FOR_ASSERT:
        assert speedups[4] >= REQUIRED_SPEEDUP, (
            f"4 shards on {cores} cores delivered only "
            f"{speedups[4]:.2f}x (need {REQUIRED_SPEEDUP}x)"
        )
