"""Table II: FIT rate of a 64 MB cache under uniform per-line ECC-1..6."""

import pytest

from conftest import emit
from repro.analysis.experiments import table2_ecc_fit
from repro.core.config import PAPER


def test_bench_table2_ecc_fit(benchmark):
    exhibit = benchmark(table2_ecc_fit)
    emit(exhibit)
    # Every per-line failure probability within 20% of the paper's.
    for row in exhibit["rows"]:
        assert row[1] == pytest.approx(row[2], rel=0.2)
    # The key anchor: ECC-6 FIT ~ 0.092.
    ecc6 = exhibit["rows"][-1]
    assert ecc6[5] == pytest.approx(PAPER.ecc_fit[5], rel=0.15)
