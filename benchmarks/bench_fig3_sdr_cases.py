"""Fig. 3: overlap-case split for two 2-fault lines, plus functional SDR
recovery rates per case."""

import random

import pytest

from conftest import emit
from repro.analysis.experiments import fig3_sdr_cases
from repro.coding.bitvec import flip_bits
from repro.core.linecodec import LineCodec
from repro.core.plt_ import ParityLineTable
from repro.core.raid4 import reconstruct_line, scan_group
from repro.core.sdr import resurrect
from repro.sttram.array import STTRAMArray


def test_bench_fig3_case_split(benchmark):
    exhibit = benchmark(fig3_sdr_cases, trials=100_000)
    emit(exhibit)
    no_overlap = exhibit["rows"][0]
    assert no_overlap[1] == pytest.approx(no_overlap[2], abs=0.005)


def _sdr_recovery_rate(overlap: int, trials: int = 120) -> float:
    """Functional recovery rate for forced overlap counts (Fig. 3 a/b/c)."""
    rng = random.Random(overlap)
    codec = LineCodec()
    array = STTRAMArray(16, codec.stored_bits)
    plt = ParityLineTable(1, codec.stored_bits)
    words = []
    for frame in range(16):
        word = codec.encode(rng.getrandbits(512))
        array.write(frame, word)
        words.append(word)
    plt.rebuild(0, words)

    recovered = 0
    for _ in range(trials):
        positions = rng.sample(range(553), 4 - overlap)
        first = positions[:2]
        second = positions[2 - overlap:][:2] if overlap else positions[2:]
        array.inject(1, flip_bits(0, first))
        array.inject(2, flip_bits(0, second))
        scan = scan_group(array, codec, 0, range(16))
        resurrect(array, codec, plt, scan, max_mismatches=6)
        if len(scan.uncorrectable) == 1:
            reconstruct_line(array, codec, plt, scan, scan.uncorrectable[0])
        if array.is_clean(1) and array.is_clean(2):
            recovered += 1
        for frame in array.faulty_lines():
            array.restore(frame, array.golden(frame))
    return recovered / trials


def test_bench_fig3_functional_recovery(benchmark):
    rates = benchmark.pedantic(
        lambda: [_sdr_recovery_rate(overlap) for overlap in (0, 1, 2)],
        rounds=1, iterations=1,
    )
    emit(
        {
            "title": "Fig. 3 (functional): SDR recovery rate by overlap case",
            "headers": ["overlapping faults", "recovery rate", "paper expectation"],
            "rows": [
                [0, rates[0], 1.0],
                [1, rates[1], 1.0],
                [2, rates[2], 0.0],
            ],
            "notes": "Recovery through real SDR + RAID-4 on a 16-line group.",
        }
    )
    assert rates[0] == 1.0
    assert rates[1] == 1.0
    assert rates[2] == 0.0
