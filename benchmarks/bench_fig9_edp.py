"""Fig. 9: system energy-delay product of SuDoku-Z normalised to the
ideal cache, across the full workload suite."""

from conftest import emit
from repro.analysis.experiments import fig9_edp

ACCESSES = 8_000


def test_bench_fig9_edp(benchmark):
    exhibit = benchmark.pedantic(
        fig9_edp,
        kwargs={"accesses_per_core": ACCESSES, "seed": 1},
        rounds=1,
        iterations=1,
    )
    emit(exhibit)
    mean_row = exhibit["rows"][-1]
    assert mean_row[0] == "MEAN"
    # Paper: EDP increases by at most ~0.4%; grant headroom for the small
    # simulated window but require the sub-3% regime.
    assert -0.1 <= mean_row[1] < 3.0
