"""Sensitivity: slowdown vs correction-event rate (section VII-B).

The paper argues that even if every expected multi-bit repair landed on
the demand path, the latency impact stays under ~0.1 %.  This bench
sweeps the correction rate from the nominal ~4 per 20 ms up to 64x that
and measures the slowdown on a memory-bound workload -- quantifying how
much reliability headroom the performance budget actually has.
"""

import pytest

from conftest import emit
from repro.cache.geometry import CacheGeometry
from repro.perf.llc import LLCConfig
from repro.perf.system import SystemConfig, SystemSimulator

GEOMETRY = CacheGeometry(capacity_bytes=4 << 20, line_bytes=64, ways=8)
ACCESSES = 24_000   # ~multi-millisecond window: several scrub intervals
WORKLOAD = "mcf"


def run(corrections_per_interval: float) -> float:
    if corrections_per_interval < 0:
        raise ValueError
    if corrections_per_interval == 0:
        llc = LLCConfig.ideal(num_lines=GEOMETRY.num_lines)
    else:
        llc = LLCConfig.sudoku(
            corrections_per_interval=corrections_per_interval,
            num_lines=GEOMETRY.num_lines,
        )
    config = SystemConfig(geometry=GEOMETRY, llc=llc)
    return SystemSimulator(
        config, WORKLOAD, ACCESSES, seed=7,
        config_label=f"corr{corrections_per_interval:g}",
    ).run().execution_time_s


def test_bench_correction_rate_sensitivity(benchmark):
    def sweep():
        ideal = run(0)
        rows = []
        for rate in (4.0, 16.0, 64.0, 256.0):
            time_s = run(rate)
            rows.append([rate, (time_s / ideal - 1) * 100])
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(
        {
            "title": "Sensitivity: slowdown vs correction events per 20 ms",
            "headers": ["corrections / interval", "slowdown %"],
            "rows": rows,
            "notes": f"{WORKLOAD}, memory-bound; nominal rate at the "
                     "paper's BER is ~4. Even 64x the nominal correction "
                     "work stays in the sub-percent regime.",
        }
    )
    by_rate = {row[0]: row[1] for row in rows}
    assert by_rate[4.0] < 1.0         # the paper's operating point
    assert by_rate[64.0] < 2.0        # the headroom claim
    # More corrections never speed things up (beyond seed noise).
    assert by_rate[256.0] >= by_rate[4.0] - 0.2
