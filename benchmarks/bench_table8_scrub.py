"""Table VIII: FIT vs scrub interval (10 / 20 / 40 ms)."""

import pytest

from conftest import emit
from repro.analysis.experiments import table8_scrub_interval


def test_bench_table8_scrub_interval(benchmark):
    exhibit = benchmark(table8_scrub_interval)
    emit(exhibit)
    rows = exhibit["rows"]
    # BER tracks the paper at every interval.
    for row in rows:
        assert row[1] == pytest.approx(row[2], rel=0.15)
    # Monotonicity: longer intervals hurt every scheme.
    for column in (3, 5, 7):
        values = [row[column] for row in rows]
        assert values == sorted(values)
    # The table's conclusions: ECC-5 misses the 1-FIT target even at
    # 10 ms, while SuDoku-Z holds it even at 40 ms.
    assert rows[0][3] > 1.0        # ECC-5 @ 10 ms
    assert rows[2][7] < 1.0        # SuDoku-Z @ 40 ms
