"""Table IX: sensitivity to cache size (32 / 64 / 128 MB)."""

import pytest

from conftest import emit
from repro.analysis.experiments import table9_cache_size


def test_bench_table9_cache_size(benchmark):
    exhibit = benchmark(table9_cache_size)
    emit(exhibit)
    values = [row[1] for row in exhibit["rows"]]
    # The table's law: FIT doubles with each doubling of capacity.
    assert values[1] == pytest.approx(2 * values[0], rel=0.01)
    assert values[2] == pytest.approx(2 * values[1], rel=0.01)
    # Every configuration stays far below the 1-FIT target.
    assert all(v < 1e-3 for v in values)
