"""Ablation (section VII-G): replacing the per-line ECC-1 with ECC-2.

Compares the standard SuDoku-Z against the ECC-2 variant analytically
(across the Table X delta sweep) and functionally (head-to-head MC at an
accelerated BER where the ECC-1 design visibly struggles).
"""

import numpy as np
import pytest

from conftest import emit
from repro.core.ecc2 import ECC2LineCodec
from repro.core.engine import SuDokuZ
from repro.core.linecodec import LineCodec
from repro.reliability.montecarlo import run_engine_campaign
from repro.reliability.sudokumodel import SuDokuReliabilityModel
from repro.sttram.array import STTRAMArray
from repro.sttram.variation import effective_ber


def test_bench_ecc2_analytical(benchmark):
    def sweep():
        rows = []
        for delta in (35, 34, 33, 32):
            ber = effective_ber(float(delta), 0.10 * delta, 0.020)
            ecc1 = SuDokuReliabilityModel(ber=ber)
            ecc2 = SuDokuReliabilityModel.for_ecc2(ber=ber)
            rows.append([delta, ber, ecc1.fit_z(), ecc2.fit_z(), 43.2, 53.2])
        return rows

    rows = benchmark(sweep)
    emit(
        {
            "title": "Ablation: SuDoku-Z with ECC-1 vs ECC-2 per line (VII-G)",
            "headers": [
                "delta", "BER", "Z FIT (ECC-1)", "Z FIT (ECC-2)",
                "bits/line ECC-1", "bits/line ECC-2",
            ],
            "rows": rows,
            "notes": "ECC-2 moves the heavy-line threshold from 3+ to 4+ "
                     "faults; still cheaper than uniform ECC-6 (60 b/line).",
        }
    )
    for row in rows:
        assert row[3] < row[2], f"ECC-2 should dominate at delta={row[0]}"
    # ECC-2 keeps sub-1 FIT even at delta = 33 where ECC-1 SuDoku exceeds it.
    by_delta = {row[0]: row for row in rows}
    assert by_delta[33][3] < 1.0 < by_delta[33][2]


def test_bench_ecc2_functional(benchmark):
    def faceoff():
        ber, intervals, group = 1.2e-3, 40, 32
        failures = {}
        for label, codec in (("ECC-1", LineCodec()), ("ECC-2", ECC2LineCodec())):
            array = STTRAMArray(group * group, codec.stored_bits)
            engine = SuDokuZ(array, group_size=group, codec=codec)
            result = run_engine_campaign(
                engine, ber=ber, intervals=intervals,
                rng=np.random.default_rng(99), randomize_content=False,
            )
            failures[label] = result.interval_failures
        return failures

    failures = benchmark.pedantic(faceoff, rounds=1, iterations=1)
    emit(
        {
            "title": "Ablation (functional): failed intervals out of 40 at BER 1.2e-3",
            "headers": ["per-line code", "failed intervals"],
            "rows": [[label, count] for label, count in failures.items()],
            "notes": "1024-line SuDoku-Z caches, identical fault statistics.",
        }
    )
    assert failures["ECC-2"] <= failures["ECC-1"]
