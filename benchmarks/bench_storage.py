"""Section VII-H: storage overheads of SuDoku vs ECC-6."""

import pytest

from conftest import emit
from repro.analysis.experiments import storage_summary
from repro.core.config import PAPER


def test_bench_storage_overheads(benchmark):
    exhibit = benchmark(storage_summary)
    emit(exhibit)
    rows = {row[0]: row[1] for row in exhibit["rows"]}
    total = rows["SuDoku total bits/line"]
    assert total == pytest.approx(PAPER.overhead_bits_sudoku, abs=1.0)
    # "30% less storage than ECC-6" (abstract).
    assert 1 - total / rows["ECC-6 bits/line"] == pytest.approx(0.30, abs=0.03)
