#!/usr/bin/env python
"""Adaptive scrubbing: holding a FIT target as the device degrades.

The paper fixes a 20 ms scrub interval sized for a healthy delta-35
device. Real devices drift (aging, temperature): this example feeds an
:class:`AdaptiveScrubController` the correction activity a degrading
device would produce and shows the interval tightening -- and the
bandwidth bill rising -- exactly enough to hold the 1-FIT target.

Run:  python examples/adaptive_scrub.py
"""

from repro.analysis.tables import format_table
from repro.reliability.binomial import binomial_tail
from repro.sttram.adaptive import AdaptiveScrubController
from repro.sttram.variation import effective_ber

#: Device health trajectory: nominal, slow drift, sharp degradation,
#: partial recovery (e.g. thermal excursion ending).
DELTA_TRAJECTORY = [35.0, 35.0, 34.5, 34.0, 33.5, 33.0, 32.5, 33.5, 34.5, 35.0]


def observed_multi_lines(delta: float, interval_s: float) -> float:
    """What the scrub engine would report at this health and interval."""
    ber = effective_ber(delta, 0.10 * delta, interval_s)
    return (1 << 20) * binomial_tail(553, 2, ber)


def main() -> None:
    controller = AdaptiveScrubController(target_fit=1.0, ewma=0.5)
    rows = []
    for epoch, delta in enumerate(DELTA_TRAJECTORY):
        observed = observed_multi_lines(delta, controller.interval_s)
        decision = controller.observe(observed)
        rows.append(
            [
                epoch,
                delta,
                observed,
                decision.chosen_interval_s * 1000,
                decision.predicted_fit,
                controller.bandwidth_fraction(),
            ]
        )
    print(format_table(
        ["epoch", "device delta", "multi lines/interval",
         "chosen interval (ms)", "predicted FIT", "scrub bandwidth"],
        rows,
    ))
    print(
        "\nThe controller reads only the correction counters the SuDoku "
        "engine already maintains (multi-bit lines per interval), inverts "
        "them through the validated reliability model, and always picks "
        "the cheapest interval that still meets the target. A static "
        "20 ms design would silently fall to "
        f"~{_static_fit(DELTA_TRAJECTORY[6]):.0f} FIT at the trough."
    )


def _static_fit(delta: float) -> float:
    from repro.reliability.sudokumodel import SuDokuReliabilityModel

    ber = effective_ber(delta, 0.10 * delta, 0.020)
    return SuDokuReliabilityModel(ber=ber).fit_z()


if __name__ == "__main__":
    main()
