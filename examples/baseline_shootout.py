#!/usr/bin/env python
"""Baseline shootout: every protection scheme, identical fault streams.

Drives the functional implementations of all of Table XI's schemes --
CPPC, RAID-6, 2DP, per-line ECC-6 (on a reduced line for speed), and
SuDoku-X/Y/Z -- through the same Monte-Carlo fault process and reports
survival, mechanism mix, and storage cost side by side.

Run:  python examples/baseline_shootout.py [--ber 4e-4] [--intervals 40]
"""

import argparse

import numpy as np

from repro.analysis.tables import format_table
from repro.baselines.cppc import CPPCCache
from repro.baselines.raid6 import RAID6Cache
from repro.baselines.twodp import TwoDPCache
from repro.core.engine import SuDokuX, SuDokuY, SuDokuZ
from repro.core.linecodec import LineCodec
from repro.reliability.montecarlo import run_engine_campaign
from repro.sttram.array import STTRAMArray

GROUP = 16
NUM_LINES = 256


def build_schemes():
    codec = LineCodec()

    def sudoku(level_cls):
        return level_cls(
            STTRAMArray(NUM_LINES, codec.stored_bits),
            group_size=GROUP, codec=codec,
        )

    return [
        ("CPPC + CRC-31", CPPCCache(num_lines=NUM_LINES)),
        ("RAID-6 + CRC-31", RAID6Cache(num_lines=NUM_LINES, group_size=GROUP)),
        ("2DP + ECC-1 + CRC", TwoDPCache(
            STTRAMArray(NUM_LINES, codec.stored_bits), group_size=GROUP,
            codec=codec,
        )),
        ("SuDoku-X", sudoku(SuDokuX)),
        ("SuDoku-Y", sudoku(SuDokuY)),
        ("SuDoku-Z", sudoku(SuDokuZ)),
    ]


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--ber", type=float, default=4e-4)
    parser.add_argument("--intervals", type=int, default=40)
    parser.add_argument("--seed", type=int, default=17)
    args = parser.parse_args()

    rows = []
    for name, scheme in build_schemes():
        print(f"running {name}...")
        result = run_engine_campaign(
            scheme, ber=args.ber, intervals=args.intervals,
            rng=np.random.default_rng(args.seed),  # same stream for all
            randomize_content=False,
        )
        overhead = getattr(scheme, "storage_overhead_bits_per_line", None)
        rows.append([
            name,
            result.interval_failures,
            result.outcomes.get("corrected_ecc1", 0),
            result.outcomes.get("corrected_raid4", 0),
            result.outcomes.get("corrected_sdr", 0)
            + result.outcomes.get("corrected_hash2", 0),
            result.outcomes.get("sdc", 0),
            overhead,
        ])

    print()
    print(format_table(
        ["scheme", f"failed/{args.intervals}", "ECC fixes", "parity fixes",
         "SDR+hash2 fixes", "SDC", "bits/line"],
        rows,
    ))
    print(
        "\nIdentical fault statistics across rows; the ladder of failed "
        "intervals is Table XI re-enacted functionally. SDC must read 0 "
        "everywhere -- each scheme's detection layer is doing its job "
        "even when correction fails."
    )


if __name__ == "__main__":
    main()
