#!/usr/bin/env python
"""Quickstart: protect a cache with SuDoku and watch it repair faults.

Builds a small SuDoku-Z-protected array, injects progressively nastier
transient fault patterns, and shows which mechanism repairs each one:

* a single flipped bit        -> per-line ECC-1 (one cycle),
* a 6-bit burst in one line   -> RAID-4 group reconstruction,
* two 2-bit-faulty lines      -> Sequential Data Resurrection,
* two 3-bit-faulty lines      -> the skewed second hash (SuDoku-Z).

Run:  python examples/quickstart.py
"""

import random

from repro import LineCodec, Outcome, STTRAMArray, SuDokuZ
from repro.coding.bitvec import random_error_vector

GROUP_SIZE = 64
NUM_LINES = GROUP_SIZE * GROUP_SIZE  # SuDoku-Z needs group_size^2 frames


def main() -> None:
    rng = random.Random(2019)
    codec = LineCodec()
    array = STTRAMArray(NUM_LINES, codec.stored_bits)
    engine = SuDokuZ(array, group_size=GROUP_SIZE, codec=codec)

    print(f"cache: {engine.describe()}")
    print(f"line format: {codec.layout.data_bits}b data + "
          f"{codec.layout.crc_bits}b CRC + {codec.layout.ecc_bits}b ECC "
          f"= {codec.stored_bits}b stored\n")

    # Fill with recognisable data.
    payloads = {}
    for frame in range(NUM_LINES):
        payloads[frame] = rng.getrandbits(512)
        engine.write_data(frame, payloads[frame])

    def attack(description, injections):
        for frame, weight in injections:
            array.inject(frame, random_error_vector(codec.stored_bits, weight, rng))
        counts = engine.scrub_frames([frame for frame, _ in injections])
        status = "OK " if "due" not in counts and "sdc" not in counts else "LOST"
        print(f"[{status}] {description:46s} -> {counts}")
        for frame, _ in injections:
            recovered, outcome = engine.read_data(frame)
            assert recovered == payloads[frame], "data corrupted!"
            assert outcome is Outcome.CLEAN

    attack("single-bit flip (ECC-1)", [(5, 1)])
    attack("6-bit burst in one line (RAID-4)", [(9, 6)])
    attack("two 2-bit lines, same group (SDR)", [(17, 2), (18, 2)])
    attack("two 3-bit lines, same group (Hash-2)", [(33, 3), (34, 3)])

    print("\nengine counters:")
    for key, value in engine.stats.as_dict().items():
        if value:
            print(f"  {key:22s} {value}")
    print(f"\nstorage overhead: {engine.storage_overhead_bits_per_line:.1f} "
          f"bits/line (vs 60 for ECC-6)")
    print("every payload verified intact -- SuDoku recovered them all.")


if __name__ == "__main__":
    main()
