#!/usr/bin/env python
"""Performance & energy simulation: the Fig. 8 / Fig. 9 methodology.

Replays identical synthetic workload traces through two 8-core systems
-- one with an ideal fault-free LLC, one with the full SuDoku-Z
machinery (syndrome checks, opportunistic scrub, correction events) --
and reports slowdown and system-EDP increase per workload.

Run:  python examples/performance_simulation.py [--workloads mcf gcc ...]
"""

import argparse

from repro.analysis.tables import format_table
from repro.perf.energy import edp_increase
from repro.perf.system import compare_ideal_vs_sudoku, normalized_slowdown

DEFAULT_WORKLOADS = ["mcf", "lbm", "gcc", "povray", "canneal", "MIX1"]


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workloads", nargs="+", default=DEFAULT_WORKLOADS)
    parser.add_argument("--accesses", type=int, default=10_000,
                        help="LLC accesses per core (default 10k)")
    args = parser.parse_args()

    rows = []
    for workload in args.workloads:
        print(f"simulating {workload} (ideal + sudoku)...")
        results = compare_ideal_vs_sudoku(
            workload, accesses_per_core=args.accesses, seed=1
        )
        sudoku = results["sudoku"]
        rows.append([
            workload,
            results["ideal"].execution_time_s * 1e3,
            sudoku.execution_time_s * 1e3,
            normalized_slowdown(results) * 100,
            edp_increase(results["ideal"], sudoku) * 100,
            sudoku.miss_rate,
            sudoku.corrections,
            sudoku.scrub_deficit_lines,
        ])

    print()
    print(format_table(
        ["workload", "ideal ms", "sudoku ms", "slowdown %", "EDP +%",
         "miss rate", "corrections", "scrub deficit"],
        rows,
    ))
    mean_slowdown = sum(row[3] for row in rows) / len(rows)
    print(f"\nmean slowdown: {mean_slowdown:.3f}%  "
          f"(paper Fig. 8: ~0.1-0.15% average)")
    print("a zero scrub deficit confirms the idle bank capacity absorbed "
          "the full scrub target.")


if __name__ == "__main__":
    main()
