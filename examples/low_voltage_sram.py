#!/usr/bin/env python
"""Beyond STTRAM: SuDoku against *persistent* faults (section VI).

The paper argues SuDoku is technology-agnostic: the same machinery that
absorbs STTRAM's thermal flips also handles SRAM cells that fail
persistently below Vmin.  This example:

1. builds a SuDoku-Z cache over an array with a random stuck-at fault
   map (persistent faults re-assert themselves after every write), and
   shows the scrub machinery keeping data intact across many epochs; and
2. prints the Table IV-style analytical comparison against uniform
   ECC-7/8/9 at the low-voltage fault rate.

Run:  python examples/low_voltage_sram.py
"""

import random

import numpy as np

from repro import LineCodec, STTRAMArray, SuDokuZ
from repro.analysis.tables import format_table
from repro.reliability.sram import sram_vmin_table
from repro.sttram.faults import PermanentFaultMap

GROUP = 32
NUM_LINES = GROUP * GROUP
FAULT_PPM = 50.0  # stuck cells per million bits


def functional_demo() -> None:
    print(f"== Functional demo: {FAULT_PPM:g} ppm stuck-at faults ==")
    rng = random.Random(11)
    codec = LineCodec()
    array = STTRAMArray(NUM_LINES, codec.stored_bits)
    engine = SuDokuZ(array, group_size=GROUP, codec=codec)
    fault_map = PermanentFaultMap.random(
        NUM_LINES, codec.stored_bits, FAULT_PPM, np.random.default_rng(11)
    )
    stuck_lines = set(fault_map.stuck_at_one) | set(fault_map.stuck_at_zero)
    print(f"fault map: {len(stuck_lines)} lines carry stuck bits")

    payloads = {}
    for frame in range(NUM_LINES):
        payloads[frame] = rng.getrandbits(512)
        engine.write_data(frame, payloads[frame])

    intact_epochs = 0
    for epoch in range(5):
        # Persistent faults re-assert on every epoch: reads see the stuck
        # values regardless of what the scrub wrote back.
        for frame in stuck_lines:
            stored = array.read(frame)
            array.restore(frame, fault_map.apply(frame, stored))
        counts = engine.scrub_frames(sorted(stuck_lines))
        lost = counts.get("due", 0) + counts.get("sdc", 0)
        summary = {k: v for k, v in counts.items() if v}
        print(f"epoch {epoch}: {summary}")
        if lost == 0:
            intact_epochs += 1
            for frame in stuck_lines:
                data, _ = engine.read_data(frame)
                assert data == payloads[frame]
    print(f"data survived {intact_epochs}/5 epochs "
          f"(every stuck line repaired on access)\n")


def analytical_table() -> None:
    print("== Table IV (model): cache failure probability at BER 1e-3 ==")
    rows = [
        [row["scheme"], row["cache_failure"], row["overhead_bits_per_line"]]
        for row in sram_vmin_table()
    ]
    print(format_table(["scheme", "P(cache failure)", "bits/line"], rows))
    print(
        "\nSmaller RAID-Groups trade parity storage for collision "
        "resistance; at the low-voltage fault rate an 8-line group beats "
        "ECC-9 (the paper's qualitative claim -- see EXPERIMENTS.md for "
        "the discussion of its unstated group size)."
    )


def main() -> None:
    functional_demo()
    analytical_table()


if __name__ == "__main__":
    main()
