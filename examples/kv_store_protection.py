#!/usr/bin/env python
"""SuDoku beyond caches: protecting a software key-value store.

Section VI argues nothing in SuDoku is STTRAM-specific -- it is a
general recipe for tolerating high-rate transient corruption in any
fixed-width storage substrate. This example builds a tiny in-memory
key-value store whose 64-byte slots live in a SuDoku-Z-protected array
subject to continuous "bit rot", and shows the store serving reads and
writes with zero data loss while the underlying medium flips thousands
of bits.

Run:  python examples/kv_store_protection.py
"""

import random

import numpy as np

from repro import LineCodec, STTRAMArray, SuDokuZ, TransientFaultInjector

GROUP = 32
NUM_SLOTS = GROUP * GROUP
ROT_BER = 3e-4          # aggressive: ~0.17 flips per slot per epoch
EPOCHS = 40
OPS_PER_EPOCH = 300


class ProtectedKVStore:
    """A fixed-capacity KV store over a SuDoku-protected slot array.

    Values are up to 62 bytes (two bytes carry the length); keys map to
    slots through open addressing in a plain dict -- the *slots* are
    what the fault process attacks.
    """

    def __init__(self) -> None:
        codec = LineCodec()
        self.array = STTRAMArray(NUM_SLOTS, codec.stored_bits)
        self.engine = SuDokuZ(self.array, group_size=GROUP, codec=codec)
        self._directory = {}
        self._free = list(range(NUM_SLOTS))

    def put(self, key: str, value: bytes) -> None:
        if len(value) > 62:
            raise ValueError("value too large for one slot")
        slot = self._directory.get(key)
        if slot is None:
            if not self._free:
                raise MemoryError("store full")
            slot = self._free.pop()
            self._directory[key] = slot
        payload = len(value).to_bytes(2, "little") + value
        self.engine.write_data(slot, int.from_bytes(payload.ljust(64, b"\0"), "little"))

    def get(self, key: str) -> bytes:
        slot = self._directory[key]
        data, outcome = self.engine.read_data(slot)
        raw = data.to_bytes(64, "little")
        length = int.from_bytes(raw[:2], "little")
        if outcome.is_failure:
            raise IOError(f"slot {slot} unrecoverable ({outcome})")
        return raw[2 : 2 + length]

    def delete(self, key: str) -> None:
        slot = self._directory.pop(key)
        self._free.append(slot)

    def scrub(self):
        return self.engine.scrub_all()


def main() -> None:
    rng = random.Random(99)
    fault_rng = np.random.default_rng(99)
    store = ProtectedKVStore()
    injector = TransientFaultInjector(store.array.line_bits, ROT_BER, fault_rng)

    shadow = {}
    total_flips = 0
    verified_reads = 0
    for epoch in range(EPOCHS):
        # The medium rots...
        events = injector.inject_interval(store.array)
        total_flips += len(events)
        # ...while the application keeps working.
        for _ in range(OPS_PER_EPOCH):
            op = rng.random()
            if op < 0.5 and shadow:
                key = rng.choice(sorted(shadow))
                assert store.get(key) == shadow[key], "data loss!"
                verified_reads += 1
            elif op < 0.9 or not shadow:
                key = f"key-{rng.randrange(400)}"
                value = rng.randbytes(rng.randrange(1, 63))
                store.put(key, value)
                shadow[key] = value
            else:
                key = rng.choice(sorted(shadow))
                store.delete(key)
                del shadow[key]
        counts = store.scrub()
        lost = counts.get("due", 0) + counts.get("sdc", 0)
        if lost:
            print(f"epoch {epoch}: LOST {lost} slots")

    # Final audit: every live key intact.
    for key, value in shadow.items():
        assert store.get(key) == value
    stats = store.engine.stats
    print(f"{EPOCHS} epochs, {total_flips} bits rotted, "
          f"{verified_reads} mid-flight reads verified, "
          f"{len(shadow)} live keys audited intact")
    print(f"corrections: ecc1={stats.count_label('corrected_ecc1')} "
          f"raid4={stats.count_label('corrected_raid4')} "
          f"sdr={stats.count_label('corrected_sdr')} "
          f"hash2={stats.count_label('corrected_hash2')}")
    print("zero data loss through continuous bit rot.")


if __name__ == "__main__":
    main()
