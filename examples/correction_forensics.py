#!/usr/bin/env python
"""Correction forensics: mining the structured event log.

Attaches an :class:`EventLog` to a SuDoku-Z engine, runs a short
fault-injection campaign, and then answers the questions an operator
would ask of a deployed part: which mechanisms fire how often, where
the correction *time* goes, which groups run hot, and what the repair
history of a specific line looks like.  Finishes by exporting the log
as JSON lines and re-importing it.

Run:  python examples/correction_forensics.py
"""

import random
from collections import Counter

import numpy as np

from repro import LineCodec, STTRAMArray, SuDokuZ, TransientFaultInjector
from repro.analysis.tables import format_table
from repro.core.eventlog import EventLog

GROUP = 32
NUM_LINES = GROUP * GROUP
BER = 4e-4
INTERVALS = 25


def main() -> None:
    rng = np.random.default_rng(17)
    local = random.Random(17)
    codec = LineCodec()
    array = STTRAMArray(NUM_LINES, codec.stored_bits)
    engine = SuDokuZ(array, group_size=GROUP, codec=codec)
    engine.event_log = EventLog()
    for frame in range(NUM_LINES):
        engine.write_data(frame, local.getrandbits(512))

    injector = TransientFaultInjector(codec.stored_bits, BER, rng)
    for interval in range(INTERVALS):
        engine.event_log.begin_interval(interval)
        vectors = injector.error_vectors(NUM_LINES)
        for frame, vector in vectors.items():
            array.inject(frame, vector)
        engine.scrub_frames(sorted(vectors))
        for frame in array.faulty_lines():      # discard any lost interval
            array.restore(frame, array.golden(frame))
        engine.initialize_parities()

    log = engine.event_log
    print(f"campaign: {INTERVALS} intervals at BER {BER:g}; "
          f"{len(log)} events recorded\n")

    print("== mechanism mix ==")
    rows = [[label, count] for label, count in sorted(log.totals.items())]
    print(format_table(["outcome", "events"], rows))

    print("\n== where the correction time goes ==")
    latency = log.latency_by_outcome()
    rows = [[label, value * 1e6] for label, value in sorted(latency.items())]
    print(format_table(["outcome", "total modelled latency (us)"], rows))

    print("\n== hottest RAID-Groups ==")
    rows = [[group, hits] for group, hits in log.hottest_groups(5)]
    print(format_table(["hash-1 group", "non-clean events"], rows))

    repeat_offenders = Counter(
        event.frame for event in log if event.outcome != "clean"
    ).most_common(3)
    if repeat_offenders:
        frame = repeat_offenders[0][0]
        print(f"\n== history of frame {frame} ==")
        rows = [
            [event.interval, event.outcome, event.fault_bits]
            for event in log.events_for_frame(frame)
        ]
        print(format_table(["interval", "outcome", "fault bits"], rows))

    exported = log.to_json_lines()
    rebuilt = EventLog.from_json_lines(exported)
    print(f"\nexported {len(exported.splitlines())} JSON lines; "
          f"re-import matches: {rebuilt.totals == log.totals}")


if __name__ == "__main__":
    main()
