#!/usr/bin/env python
"""Walk through the paper's own worked examples (Figures 1, 2, 5, 6).

The paper illustrates SuDoku on a toy cache of sixteen lines (A..P) in
four-line RAID-Groups.  This script builds exactly that configuration
and re-enacts each figure:

* Fig. 1/2 — lines A-D form a RAID-Group; line B takes a six-bit error,
  is detected by CRC, and is rebuilt as A xor C xor D xor parity.
* Fig. 5   — the two hash functions: consecutive lines group under
  Hash-1, every-fourth lines under Hash-2, and no pair shares both.
* Fig. 6   — lines B and D (same Hash-1 group) each take a three-bit
  error; Hash-1 correction fails, but under Hash-2 they live in
  different groups and both recover.

Run:  python examples/paper_figures_walkthrough.py
"""

import random
import string

from repro import LineCodec, STTRAMArray, SuDokuX, SuDokuZ
from repro.coding.bitvec import random_error_vector
from repro.core.grouping import GroupMapper, SkewedGroupMapper, never_colocated

NAMES = string.ascii_uppercase[:16]   # A..P, as in the figures


def name_of(frame: int) -> str:
    return NAMES[frame]


def fresh(engine_cls):
    rng = random.Random(16)
    codec = LineCodec()
    array = STTRAMArray(16, codec.stored_bits)
    engine = engine_cls(array, group_size=4, codec=codec)
    payloads = {}
    for frame in range(16):
        payloads[frame] = rng.getrandbits(512)
        engine.write_data(frame, payloads[frame])
    return rng, array, engine, payloads


def figure_1_and_2() -> None:
    print("== Fig. 1/2: RAID-4 rebuild of line B ==")
    rng, array, engine, payloads = fresh(SuDokuX)
    group = engine.mapper.group_of(1)   # B's group: A, B, C, D
    members = ", ".join(name_of(f) for f in engine.mapper.members(group))
    print(f"line B's RAID-Group: {{{members}}}, parity in PLT entry {group}")

    array.inject(1, random_error_vector(array.line_bits, 6, rng))
    print("injected a 6-bit error into B (beyond ECC-1, detected by CRC-31)")
    data, outcome = engine.read_data(1)
    assert data == payloads[1]
    print(f"read(B) -> outcome={outcome}, data intact: "
          f"B = A xor C xor D xor parity\n")


def figure_5() -> None:
    print("== Fig. 5: the two hash functions ==")
    hash1 = GroupMapper(16, 4)
    hash2 = SkewedGroupMapper(16, 4)
    for group in range(4):
        under1 = "".join(name_of(f) for f in hash1.members(group))
        under2 = "".join(name_of(f) for f in hash2.members(group))
        print(f"  group {group}:  Hash-1 {{{under1}}}   Hash-2 {{{under2}}}")
    clashes = [
        (name_of(a), name_of(b))
        for a in range(16)
        for b in range(a + 1, 16)
        if not never_colocated(hash1, hash2, a, b)
    ]
    print(f"pairs sharing a group under BOTH hashes: {clashes or 'none'}")
    assert not clashes
    print("the skewing guarantee of section V-A holds\n")


def figure_6() -> None:
    print("== Fig. 6: B and D recovered through Hash-2 ==")
    rng, array, engine, payloads = fresh(SuDokuZ)
    b, d = 1, 3
    assert engine.mapper.group_of(b) == engine.mapper.group_of(d)
    for frame in (b, d):
        array.inject(frame, random_error_vector(array.line_bits, 3, rng))
    print("injected 3-bit errors into B and D (same Hash-1 group: "
          "SDR cannot resurrect 3-fault lines, Hash-1 is stuck)")

    partners_b = "".join(name_of(f) for f in
                         engine.mapper2.members(engine.mapper2.group_of(b)))
    partners_d = "".join(name_of(f) for f in
                         engine.mapper2.members(engine.mapper2.group_of(d)))
    print(f"under Hash-2: B joins {{{partners_b}}}, D joins {{{partners_d}}}")

    counts = engine.scrub_frames([b, d])
    print(f"scrub outcome: {counts}")
    assert counts.get("corrected_hash2") == 2
    for frame in (b, d):
        data, _ = engine.read_data(frame)
        assert data == payloads[frame]
    print("both lines rebuilt in their Hash-2 groups -- SuDoku-Z recovered "
          "a pattern that defeats SuDoku-Y\n")


def main() -> None:
    figure_1_and_2()
    figure_5()
    figure_6()
    print("every figure scenario reproduced on the real engines.")


if __name__ == "__main__":
    main()
