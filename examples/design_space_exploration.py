#!/usr/bin/env python
"""Design-space exploration: what would a deployment actually build?

Given a technology point (thermal stability) and a FIT target, sweeps
per-line code strength (SuDoku ECC-1/ECC-2 and uniform ECC-k),
RAID-Group size, and scrub interval, then reports the feasible Pareto
front over storage, scrub bandwidth, and correction latency.

Run:  python examples/design_space_exploration.py [--delta 34] [--target-fit 1.0]
"""

import argparse

from repro.analysis.tables import format_table
from repro.reliability.designspace import (
    cheapest_meeting_target,
    enumerate_design_space,
    pareto_front,
)


def explore(delta: float, target_fit: float) -> None:
    print(f"== delta = {delta:g}, target <= {target_fit:g} FIT ==")
    points = enumerate_design_space(delta=delta)
    feasible = [p for p in points if p.meets(target_fit)]
    print(f"{len(points)} configurations priced, {len(feasible)} feasible")

    front = pareto_front(points, target_fit)
    rows = [
        [
            p.label,
            p.fit,
            p.overhead_bits_per_line,
            p.scrub_bandwidth_fraction,
            p.correction_latency_us,
        ]
        for p in front
    ]
    print(format_table(
        ["configuration", "FIT", "bits/line", "scrub bw", "repair us"], rows
    ))

    winner = cheapest_meeting_target(points, target_fit)
    if winner is None:
        print("no configuration meets the target -- lower the interval or "
              "strengthen the code\n")
    else:
        print(f"cheapest feasible: {winner.label} "
              f"({winner.overhead_bits_per_line:.1f} bits/line, "
              f"{winner.fit:.3g} FIT)\n")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--delta", type=float, default=None,
                        help="explore a single delta instead of the sweep")
    parser.add_argument("--target-fit", type=float, default=1.0)
    args = parser.parse_args()

    deltas = [args.delta] if args.delta is not None else [35.0, 34.0, 33.0, 32.0]
    for delta in deltas:
        explore(delta, args.target_fit)

    print("Reading the sweep: at the paper's node (35) plain SuDoku-Z wins "
          "outright; as delta falls, the ECC-2 variant keeps a cheap "
          "configuration feasible long after uniform ECC-6 has failed.")


if __name__ == "__main__":
    main()
