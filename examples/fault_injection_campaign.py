#!/usr/bin/env python
"""Monte-Carlo fault-injection campaign on the functional engines.

Runs the bit-level SuDoku engines (and the 2DP baseline) through
hundreds of scrub intervals at an accelerated bit error rate, measures
failure frequencies with confidence intervals, and compares them with
the analytical model -- the validation methodology behind every FIT
number this reproduction quotes.

Run:  python examples/fault_injection_campaign.py [--intervals N]
"""

import argparse

import numpy as np

from repro.analysis.tables import format_table
from repro.reliability.montecarlo import run_group_campaign
from repro.reliability.sudokumodel import SuDokuReliabilityModel

GROUP = 32
LINES = GROUP * GROUP


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--intervals", type=int, default=150,
                        help="scrub intervals per campaign (default 150)")
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args()

    campaigns = [("X", 2.0e-4), ("Y", 6.0e-4), ("Z", 8.0e-4)]
    rows = []
    for level, ber in campaigns:
        print(f"running SuDoku-{level} campaign at BER {ber:g} "
              f"({args.intervals} intervals, {LINES} lines)...")
        result = run_group_campaign(
            level, ber, trials=args.intervals, group_size=GROUP,
            rng=np.random.default_rng(args.seed),
        )
        model = SuDokuReliabilityModel(ber=ber, group_size=GROUP, num_lines=LINES)
        predicted = {
            "X": model.cache_fail_x,
            "Y": model.cache_fail_y,
            "Z": model.cache_fail_z,
        }[level]()
        low, high = result.wilson_interval()
        rows.append([
            f"SuDoku-{level}", ber, result.failure_probability,
            f"[{low:.3f}, {high:.3f}]", predicted,
            result.outcome_rate("corrected_ecc1"),
            result.outcomes.get("sdc", 0),
        ])

    print()
    print(format_table(
        ["engine", "BER", "measured P(fail)", "95% CI",
         "model P(fail)", "ECC-1 fixes/interval", "SDC"],
        rows,
    ))
    print(
        "\nReading the table: X's closed form sits inside the measured CI; "
        "the Y/Z forms are conservative upper bounds (the functional "
        "peeling repair recovers patterns the closed form writes off). "
        "SDC must be zero -- any non-zero value would be a soundness bug."
    )


if __name__ == "__main__":
    main()
