#!/usr/bin/env python
"""Reliability study: regenerate the paper's analytical landscape.

Sweeps thermal stability and scrub interval through the device model,
then prints the FIT comparison between uniform ECC-k and SuDoku-X/Y/Z --
the analysis behind Tables I, II, VIII, X and Fig. 7.

Run:  python examples/reliability_study.py
"""

from repro.analysis.tables import format_table
from repro.reliability.eccmodel import ECCCacheModel
from repro.reliability.sudokumodel import SuDokuReliabilityModel
from repro.sttram.variation import effective_ber, mean_cell_mttf_seconds


def device_landscape() -> None:
    print("== STTRAM device landscape (64 MB cache, sigma = 10%) ==")
    rows = []
    for delta in (60, 40, 35, 34, 33):
        ber = effective_ber(delta, 0.10 * delta, 0.020)
        mttf_h = mean_cell_mttf_seconds(delta, 0.10 * delta) / 3600
        rows.append([delta, ber, mttf_h, ber * (1 << 29)])
    print(format_table(
        ["delta", "BER/20ms", "mean cell MTTF (h)", "E[faulty bits]"], rows
    ))
    print()


def protection_landscape() -> None:
    print("== Protection landscape at the paper's operating point ==")
    ber = effective_ber(35, 3.5, 0.020)
    model = SuDokuReliabilityModel(ber=ber)
    rows = [["ECC-" + str(t), ECCCacheModel(t=t, ber=ber).fit(), 10 * t]
            for t in range(1, 7)]
    rows += [
        ["SuDoku-X", model.fit_x(), 43],
        ["SuDoku-Y", model.fit_y(), 43],
        ["SuDoku-Z", model.fit_z(), 43],
    ]
    print(format_table(["scheme", "FIT", "bits/line"], rows))
    print(f"\nSuDoku-Z vs ECC-6 strength: "
          f"{ECCCacheModel(t=6, ber=ber).fit() / model.fit_z():,.0f}x "
          f"(paper: 874x)")
    print(f"SuDoku-Z MTTF: {model.mttf_z_hours():.3g} hours "
          f"(paper: 'trillions of hours')\n")


def scrub_interval_tradeoff() -> None:
    print("== Scrub interval trade-off (Table VIII) ==")
    rows = []
    for interval_ms in (5, 10, 20, 40, 80):
        interval_s = interval_ms / 1000.0
        ber = effective_ber(35, 3.5, interval_s)
        model = SuDokuReliabilityModel(ber=ber, interval_s=interval_s)
        scrub_busy = (1 << 20) * 9e-9 / interval_s
        rows.append([
            f"{interval_ms}ms", ber,
            ECCCacheModel(t=6, ber=ber, interval_s=interval_s).fit(),
            model.fit_z(), scrub_busy,
        ])
    print(format_table(
        ["interval", "BER", "ECC-6 FIT", "SuDoku-Z FIT", "raw scrub bandwidth"],
        rows,
    ))
    print("\nShorter intervals buy reliability with scrub bandwidth; the "
          "paper's 20 ms keeps SuDoku-Z far below 1 FIT at a few percent "
          "of raw bandwidth (hidden in idle slots).")


def main() -> None:
    device_landscape()
    protection_landscape()
    scrub_interval_tradeoff()


if __name__ == "__main__":
    main()
